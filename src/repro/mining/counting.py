"""Episode occurrence counting — the paper's "counting step".

This module is the computational heart of the reproduction.  Counting
is organized in *engine tiers* (see :mod:`repro.mining.engines` for the
registry that names and selects them):

* ``scalar-oracle`` — per-character scalar FSM counting
  (:func:`count_batch_reference` / :func:`count_matrix_reference`), the
  semantic ground truth every other tier is property-tested against.
  O(n·E) interpreter steps; used only for verification.
* ``vector-sweep`` — one Python-level pass over the database advancing
  all episodes' FSM states as NumPy vectors
  (:func:`_count_subsequence_batch`, :func:`_count_expiring_batch`).
  O(n) interpreter steps regardless of E; wins on short databases where
  per-episode setup would dominate.
* ``position-hop`` — vectorized position-list counting: per-symbol
  occurrence arrays are extracted once per database (cached on a
  :class:`DatabaseIndex`), each episode's match structure is derived by
  ``np.searchsorted`` hops between its symbols' position lists, and the
  greedy non-overlapped count is resolved in O(log m) vectorized
  pointer-jumping rounds instead of a per-occurrence loop.  Interpreter
  work is O(E·(L + log m)) — *independent of n* — which is what kills
  the per-character sweeps on realistic databases.
* ``RESET`` has its own closed form: a single O(n) pass counts *every*
  length-L episode at once via base-N n-gram encoding and ``bincount``
  (:func:`ngram_counts`; RESET counting equals substring counting, see
  :mod:`repro.mining.policies`), and :func:`count_episode` uses a
  direct O(n·L) sliding-window comparison for single episodes so the
  N**L gram table is never materialized for one count.

The ``auto`` engine picks ``vector-sweep`` only when the database is
short on both scales (``n < 4096`` *and* ``n < 8·E``) and
``position-hop`` otherwise; RESET always takes the n-gram/sliding-window
path.  Batch entry points accept an optional ``index`` so callers that
count many batches against one database (the level-wise miner, the
sharded engine) pay the position-extraction cost once.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ValidationError
from repro.mining.episode import Episode, episodes_to_matrix
from repro.mining.fsm import EpisodeFSM
from repro.mining.policies import MatchPolicy, validate_window

#: n-gram encoding uses int64; N**L must stay below 2**62.
_MAX_ENCODED = 2**62

#: times[] sentinel for "prefix never completed" in the expiring sweeps.
_NEG = -(1 << 60)


def _check_db(db: np.ndarray) -> np.ndarray:
    db = np.asarray(db)
    if db.ndim != 1:
        raise ValidationError(f"database must be 1-D, got shape {db.shape}")
    return db


# ---------------------------------------------------------------------------
# Database position index
# ---------------------------------------------------------------------------

class DatabaseIndex:
    """Per-database cache of per-symbol occurrence position lists.

    ``positions(symbol)`` returns the sorted int64 array of indices where
    ``symbol`` occurs.  All lists are derived from one stable argsort of
    the database (O(n log n), done lazily on first use), so indexing a
    database for an E-episode batch costs one pass, not E·L scans.

    Instances are cheap to construct (no work until first lookup) and
    are meant to be built once per database and threaded through every
    counting call against it — the level-wise miner does exactly that.
    """

    def __init__(self, db: np.ndarray, fingerprint: "str | None" = None) -> None:
        self.db = _check_db(db)
        self._order: np.ndarray | None = None
        self._sorted: np.ndarray | None = None
        self._cache: dict[int, np.ndarray] = {}
        self._fingerprint = fingerprint

    @property
    def n(self) -> int:
        return int(self.db.size)

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the indexed database (see
        :func:`db_fingerprint`), computed lazily and cached — callers
        that already hashed the database pass it to the constructor.
        Valid as long as the database is not mutated in place (the same
        contract under which the index itself is valid)."""
        if self._fingerprint is None:
            self._fingerprint = db_fingerprint(self.db)
        return self._fingerprint

    def _ensure_sorted(self) -> None:
        if self._order is None:
            self._order = np.argsort(self.db, kind="stable").astype(np.int64)
            self._sorted = self.db[self._order]

    def positions(self, symbol: int) -> np.ndarray:
        """Sorted indices of ``symbol`` in the database."""
        symbol = int(symbol)
        hit = self._cache.get(symbol)
        if hit is not None:
            return hit
        self._ensure_sorted()
        lo = int(np.searchsorted(self._sorted, symbol, side="left"))
        hi = int(np.searchsorted(self._sorted, symbol, side="right"))
        pos = self._order[lo:hi]
        self._cache[symbol] = pos
        return pos


def db_fingerprint(db: np.ndarray) -> str:
    """Cheap content fingerprint of a database array.

    Hashes the raw bytes plus dtype/shape (blake2b runs at memory
    bandwidth, so this is negligible next to any counting pass).  Used
    wherever a :class:`DatabaseIndex` is cached across calls — object
    identity alone cannot detect in-place mutation, and a stale index
    silently returns wrong counts.
    """
    db = np.ascontiguousarray(db)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr((db.dtype.str, db.shape)).encode())
    digest.update(db.tobytes())
    return digest.hexdigest()


def ngram_counts(db: np.ndarray, level: int, alphabet_size: int) -> np.ndarray:
    """Counts of every length-``level`` gram, indexed by base-N encoding.

    Returns an array of length ``alphabet_size ** level`` where entry
    ``sum(code[j] * N**(L-1-j))`` is the number of (possibly not
    distinct-item) contiguous occurrences of that gram.
    """
    db = _check_db(db)
    if level < 1:
        raise ValidationError(f"level must be >= 1, got {level}")
    if alphabet_size < 1:
        raise ValidationError("alphabet_size must be >= 1")
    if alphabet_size**level >= _MAX_ENCODED:
        raise ValidationError(
            f"alphabet {alphabet_size} at level {level} overflows n-gram encoding"
        )
    n = db.size
    if n < level:
        return np.zeros(alphabet_size**level, dtype=np.int64)
    code = db[: n - level + 1].astype(np.int64)
    for j in range(1, level):
        code = code * alphabet_size + db[j : n - level + 1 + j]
    return np.bincount(code, minlength=alphabet_size**level)


def encode_episodes(matrix: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Base-N encode an (E, L) episode matrix to gram indices."""
    enc = matrix[:, 0].astype(np.int64)
    for j in range(1, matrix.shape[1]):
        enc = enc * alphabet_size + matrix[:, j]
    return enc


def as_episode_matrix(episodes: "list[Episode] | np.ndarray") -> np.ndarray:
    """Normalize an episode batch (Episode list, (E, L) array, or
    :class:`~repro.mining.trie.CandidateTrie`) to a matrix.

    Trie batches are recognized structurally (their cached ``matrix``
    property) rather than by type, so this module never imports
    :mod:`repro.mining.trie` (which imports this one).
    """
    if isinstance(episodes, np.ndarray):
        matrix = episodes
    else:
        trie_matrix = getattr(episodes, "matrix", None)
        matrix = (
            trie_matrix
            if isinstance(trie_matrix, np.ndarray)
            else episodes_to_matrix(list(episodes))
        )
    if matrix.ndim != 2:
        raise ValidationError(f"episode matrix must be 2-D, got {matrix.shape}")
    return matrix


def count_batch(
    db: np.ndarray,
    episodes: "list[Episode] | np.ndarray",
    alphabet_size: int,
    policy: MatchPolicy = MatchPolicy.RESET,
    window: int | None = None,
    *,
    engine: "str | None" = None,
    index: DatabaseIndex | None = None,
) -> np.ndarray:
    """Occurrence counts for a batch of same-length episodes.

    Dispatches through the engine registry: ``engine`` names a
    registered counting engine (default ``"auto"``, which picks the
    fastest exact implementation for the policy and problem shape).
    ``index`` optionally carries a prebuilt :class:`DatabaseIndex` so
    repeated batches against one database share position lists.
    :class:`~repro.mining.trie.CandidateTrie` batches keep their shared
    structure (the engine's ``count_batch`` path); flat inputs are
    normalized to a matrix.
    """
    from repro.mining.engines import get_engine  # lazy: avoids import cycle

    batch: object = episodes
    if isinstance(episodes, np.ndarray) or not hasattr(episodes, "matrix"):
        batch = as_episode_matrix(episodes)
    db = _check_db(db)
    validate_window(policy, window)
    resolved = get_engine(engine or "auto")
    with resolved:
        # one call = one run scope (REP003); a no-op for the stateless
        # tiers, pool acquire/release for engines that hold resources
        return resolved.count_batch(
            db, batch, alphabet_size, policy, window, index=index
        )


def count_reset_batch(
    db: np.ndarray, matrix: np.ndarray, alphabet_size: int
) -> np.ndarray:
    """RESET counts for a batch via the O(n) n-gram table."""
    grams = ngram_counts(db, matrix.shape[1], alphabet_size)
    return grams[encode_episodes(matrix, alphabet_size)]


def count_episode(
    db: np.ndarray,
    episode: Episode,
    alphabet_size: int,
    policy: MatchPolicy = MatchPolicy.RESET,
    window: int | None = None,
    *,
    index: DatabaseIndex | None = None,
) -> int:
    """Occurrence count for one episode.

    Single-episode counting never goes through the batch RESET path:
    materializing the ``alphabet_size ** level`` gram table for one
    episode is O(N^L) memory, so RESET uses a direct O(n·L) vectorized
    sliding-window comparison instead, and SUBSEQUENCE/EXPIRING use
    position-list hopping.
    """
    db = _check_db(db)
    validate_window(policy, window)
    if any(i >= alphabet_size for i in episode.items):
        raise ValidationError(
            f"episode {episode} exceeds alphabet of size {alphabet_size}"
        )
    if policy is MatchPolicy.RESET:
        # episode.items, not episode.array: the uint8 matrix form would
        # truncate item codes on alphabets wider than 256
        return _count_single_reset(db, np.asarray(episode.items, dtype=np.int64))
    if policy is MatchPolicy.SUBSEQUENCE:
        return _count_subsequence_hopping(db, episode, index=index)
    index = index if index is not None else DatabaseIndex(db)
    return _count_positions_single(index, episode.items, int(window))  # type: ignore[arg-type]


def _count_single_reset(db: np.ndarray, items: np.ndarray) -> int:
    """Contiguous occurrence count of one episode, O(n·L) time, O(n) memory.

    Episode items are distinct, so matches cannot overlap and the
    window-match count equals the FSM's non-overlapped RESET count.
    """
    n = db.size
    length = len(items)
    if n < length:
        return 0
    mask = db[: n - length + 1] == items[0]
    for j in range(1, length):
        mask &= db[j : n - length + 1 + j] == items[j]
    return int(np.count_nonzero(mask))


# ---------------------------------------------------------------------------
# SUBSEQUENCE / EXPIRING vector sweeps (the ``vector-sweep`` engine tier)
# ---------------------------------------------------------------------------

def resume_subsequence_batch(
    db: np.ndarray, matrix: np.ndarray, states: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """SUBSEQUENCE sweep from arbitrary entry states.

    Runs the greedy non-overlapped recurrence over ``db`` with episode
    ``e`` starting in FSM state ``states[e]`` (0..L-1), returning
    ``(counts, exit_states)``.  This is the resumable primitive behind
    the segmented two-pass decomposition in :mod:`repro.mining.spanning`:
    because the SUBSEQUENCE state is one small integer, a segment's
    behaviour from *every* entry state can be tabulated in a single
    sweep and segments composed exactly.
    """
    n_eps, length = matrix.shape
    state = np.array(states, dtype=np.int64, copy=True)
    counts = np.zeros(n_eps, dtype=np.int64)
    # needed[e] = matrix[e, state[e]]; gather once per character
    rows = np.arange(n_eps)
    mat = matrix.astype(np.int64)
    for c in np.asarray(db, dtype=np.int64):
        advance = mat[rows, state] == c
        state[advance] += 1
        done = state == length
        if done.any():
            counts[done] += 1
            state[done] = 0
    return counts, state


def _count_subsequence_batch(db: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Greedy non-overlapped counting, all episodes advanced per character."""
    counts, _ = resume_subsequence_batch(
        db, matrix, np.zeros(matrix.shape[0], dtype=np.int64)
    )
    return counts


def _expiring_step(
    times: np.ndarray,
    counts: np.ndarray,
    mat: np.ndarray,
    c: int,
    t: int,
    window: int,
    length: int,
    state_cols: np.ndarray,
) -> None:
    """One EXPIRING character step, updating ``times``/``counts`` in place.

    ``ok[:, s-1]`` means state ``s``'s symbol fired; state ``s >= 2``
    additionally requires its predecessor prefix alive within the
    window.  All states read the *previous* character's snapshot, so one
    symbol can both extend an existing prefix and re-anchor a fresher
    one — matching :class:`~repro.mining.fsm.EpisodeFSM`'s EXPIRING
    semantics exactly.
    """
    ok = mat == c
    if length > 1:
        ok[:, 1:] &= (t - times[:, 1:length]) <= window
    np.copyto(times[:, 1:], t, where=ok)
    done = times[:, length] == t
    if done.any():
        counts[done] += 1
        times[np.ix_(done, state_cols)] = _NEG  # non-overlap


def resume_expiring_batch(
    db: np.ndarray,
    matrix: np.ndarray,
    window: int,
    times: np.ndarray,
    t0: int = 0,
) -> "tuple[np.ndarray, np.ndarray]":
    """EXPIRING sweep resumed from a ``(E, L+1)`` timestamp snapshot.

    ``times[e, s]`` holds the latest *absolute* database index at which
    episode ``e``'s length-``s`` prefix completed (``-infinity``
    sentinel: never); characters of ``db`` are indexed ``t0, t0+1, ...``
    so a snapshot taken at a segment boundary resumes exactly.  Returns
    ``(counts, exit_times)``; the input snapshot is not mutated.  Column
    0 (the empty prefix) carries no information — state 1 re-anchors
    unconditionally.
    """
    n_eps, length = matrix.shape
    times = np.array(times, dtype=np.int64, copy=True)
    counts = np.zeros(n_eps, dtype=np.int64)
    mat = matrix.astype(np.int64)
    state_cols = np.arange(1, length + 1)
    for i, c in enumerate(np.asarray(db, dtype=np.int64)):
        _expiring_step(times, counts, mat, c, t0 + i, window, length, state_cols)
    return counts, times


def _count_expiring_batch(
    db: np.ndarray, matrix: np.ndarray, window: int
) -> np.ndarray:
    """Windowed counting with per-state latest-timestamp tracking
    (property-tested against the scalar FSM in ``tests/test_counting.py``)."""
    n_eps, length = matrix.shape
    times = np.full((n_eps, length + 1), _NEG, dtype=np.int64)
    counts, _ = resume_expiring_batch(db, matrix, window, times)
    return counts


# ---------------------------------------------------------------------------
# Position-list counting (the ``position-hop`` engine tier)
# ---------------------------------------------------------------------------

def _hop_positions(
    index: DatabaseIndex,
    ends: np.ndarray,
    starts: np.ndarray,
    item: int,
    window: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance a completion frontier ``(ends, starts)`` by one symbol.

    One searchsorted hop: for every occurrence of ``item``, find the
    latest prefix completion strictly before it (gap bounded by
    ``window`` when set) and extend that chain.  This is the single-edge
    step both the flat chain (:func:`_chain_positions`) and the
    trie-shared walk (:func:`repro.mining.trie.count_positions_trie`)
    are built from — the frontier depends only on the prefix consumed
    so far, never on any suffix, which is what makes sharing a parent
    frontier across all trie children exact.
    """
    empty = np.empty(0, dtype=np.int64)
    pos = index.positions(item)
    if ends.size == 0 or pos.size == 0:
        return empty, empty
    # latest completed prefix strictly before each candidate position
    idx = np.searchsorted(ends, pos, side="left") - 1
    ok = idx >= 0
    idx0 = np.maximum(idx, 0)
    if window is not None:
        ok &= (pos - ends[idx0]) <= window
    return pos[ok], starts[idx0][ok]


def _chain_positions(
    index: DatabaseIndex, items: "tuple[int, ...]", window: int | None
) -> tuple[np.ndarray, np.ndarray]:
    """Completion positions and latest chain starts for one episode.

    Returns ``(ends, starts)``: ``ends`` holds every database position
    at which some valid occurrence chain ``p_1 < ... < p_L`` ends
    (``window`` bounds each consecutive gap; ``None`` means unbounded),
    and ``starts[i]`` is the *latest possible* ``p_1`` over all chains
    ending at ``ends[i]``.  Both arrays are sorted ascending; ``starts``
    is non-decreasing (taking the latest feasible predecessor at every
    hop maximizes the start, by induction over prefix length).
    """
    reach = index.positions(items[0])
    starts = reach
    for item in items[1:]:
        reach, starts = _hop_positions(index, reach, starts, item, window)
        if reach.size == 0:
            return reach, starts
    return reach, starts


def _walk_jump_chain(
    ends: np.ndarray, starts: np.ndarray, first: int
) -> tuple[int, int]:
    """Walk the greedy completion chain starting at completion ``first``.

    ``jump[i] = first k with starts[k] > ends[i]`` is the next greedy
    non-overlapped completion after completion ``i`` (``starts`` is
    non-decreasing, so the set of chains lying wholly after ``ends[i]``
    is a suffix of indices).  Returns ``(count, last)`` — the number of
    completions on the chain ``first -> jump[first] -> ...`` and the
    index of the final one — resolved with O(log m) vectorized
    binary-lifting rounds instead of a per-occurrence loop.
    ``first >= m`` means no completion remains: ``(0, -1)``.
    """
    m = int(ends.size)
    if first >= m:
        return 0, -1
    jump = np.searchsorted(starts, ends, side="right")
    table = np.append(jump, m).astype(np.int64)  # sentinel: m maps to m
    tables = [table]
    while (1 << len(tables)) < m:
        prev = tables[-1]
        tables.append(prev[prev])
    count = 1
    cur = int(first)
    for k in range(len(tables) - 1, -1, -1):
        nxt = int(tables[k][cur])
        if nxt < m:
            count += 1 << k
            cur = nxt
    return count, cur


def _greedy_nonoverlap_count(ends: np.ndarray, starts: np.ndarray) -> int:
    """Greedy non-overlapped occurrence count from chain completions.

    The scalar FSMs count by taking the earliest completion whose whole
    chain lies after the previous completion; index 0 is always the
    first completion (starts >= 0), and the rest follow the
    :func:`_walk_jump_chain` pointer chain.
    """
    count, _ = _walk_jump_chain(ends, starts, 0)
    return count


def _count_positions_single(
    index: DatabaseIndex, items: "tuple[int, ...]", window: int | None
) -> int:
    if len(items) == 1:
        # every occurrence of the symbol is a (trivially non-overlapped)
        # completion under both policies
        return int(index.positions(items[0]).size)
    ends, starts = _chain_positions(index, items, window)
    return _greedy_nonoverlap_count(ends, starts)


def count_positions_batch(
    db: np.ndarray,
    matrix: np.ndarray,
    window: int | None = None,
    index: DatabaseIndex | None = None,
) -> np.ndarray:
    """Position-list counts for a batch: SUBSEQUENCE (``window=None``)
    or EXPIRING (``window`` set).  Interpreter work per episode is
    O(L + log m) vectorized operations, independent of database length.
    """
    index = index if index is not None else DatabaseIndex(db)
    out = np.zeros(matrix.shape[0], dtype=np.int64)
    for i in range(matrix.shape[0]):
        items = tuple(int(x) for x in matrix[i])
        out[i] = _count_positions_single(index, items, window)
    return out


# ---------------------------------------------------------------------------
# Position-hop chunk resume (streaming advance; see repro.mining.spanning)
# ---------------------------------------------------------------------------

def _hop_partial_match(
    index: DatabaseIndex, items: "tuple[int, ...]", after: int
) -> tuple[int, int]:
    """Greedy earliest-occurrence match of ``items`` strictly after ``after``.

    Hops each symbol to its first occurrence strictly after the
    previous hop — exactly the scalar FSM's advance rule — and returns
    ``(n_matched, last_pos)``.  ``n_matched == len(items)`` means the
    whole sequence completed at ``last_pos``; otherwise ``last_pos`` is
    the position of the final matched symbol (``after`` if none).
    """
    pos = int(after)
    matched = 0
    for item in items:
        occ = index.positions(item)
        j = int(np.searchsorted(occ, pos, side="right"))
        if j >= occ.size:
            return matched, pos
        pos = int(occ[j])
        matched += 1
    return matched, pos


def _resume_subsequence_hopping(
    index: DatabaseIndex,
    items: "tuple[int, ...]",
    state: int,
    chain: "tuple[np.ndarray, np.ndarray]",
) -> tuple[int, int]:
    """``(count, exit_state)`` of the greedy SUBSEQUENCE FSM resumed in
    ``state`` over the indexed database segment.

    Bit-identical to one lane of :func:`resume_subsequence_batch`, in
    O(L + log m) searchsorted hops instead of a per-character sweep:

    1. the carried partial completes greedily (``items[state:]`` hopped
       to earliest occurrences — the FSM's exact advance rule);
    2. every later completion follows the full-episode jump chain
       (:func:`_walk_jump_chain` over ``chain``, the precomputed
       :func:`_chain_positions` of the whole episode — shared across a
       trie subtree by :func:`repro.mining.trie.resume_positions_trie`);
    3. the exit state is the greedy partial progress strictly after the
       final completion (it can never re-complete — a full chain there
       would itself have been on the jump chain).
    """
    length = len(items)
    matched, p1 = _hop_partial_match(index, items[state:], -1)
    if state + matched < length:
        return 0, state + matched
    ends, starts = chain
    k = int(np.searchsorted(starts, p1, side="right"))
    extra, last = _walk_jump_chain(ends, starts, k)
    q = int(ends[last]) if extra else p1
    exit_state, _ = _hop_partial_match(index, items, q)
    return 1 + extra, exit_state


def _expiring_chain_with_tails(
    index: DatabaseIndex, items: "tuple[int, ...]", window: int
) -> "tuple[np.ndarray, np.ndarray, list[tuple[int, int] | None]]":
    """Windowed chain fold capturing each prefix depth's final frontier.

    Returns ``(ends, starts, tails)`` where ``(ends, starts)`` is the
    full-episode frontier and ``tails[s-1]`` is the ``(end, start)``
    pair of the *last* completion on the depth-``s`` frontier for
    ``s = 1..L-1`` (``None`` when that frontier is empty) — the inputs
    :func:`_expiring_exit_row` turns into the sweep's exit snapshot.
    """
    ends = index.positions(items[0])
    starts = ends
    tails: "list[tuple[int, int] | None]" = []
    for item in items[1:]:
        tails.append(
            (int(ends[-1]), int(starts[-1])) if ends.size else None
        )
        ends, starts = _hop_positions(index, ends, starts, item, window)
    return ends, starts, tails


def _expiring_exit_row(
    length: int,
    tails: "list[tuple[int, int] | None]",
    ends: np.ndarray,
    starts: np.ndarray,
    t0: int,
) -> "tuple[int, np.ndarray]":
    """``(count, exit_times_row)`` of the empty-entry EXPIRING sweep.

    Bit-identical to one row of :func:`resume_expiring_batch` from the
    all-``_NEG`` snapshot: the count is the greedy jump chain over the
    full-episode frontier, and the sweep's exit value for column ``s``
    is the latest valid ``s``-prefix completion built entirely after
    the final full completion ``q`` (the sweep wipes columns at every
    completion).  Because ``starts`` is non-decreasing per depth, that
    set is a suffix of the depth-``s`` frontier, so it is non-empty iff
    the frontier's final chain starts after ``q`` — and its latest end
    is the frontier's final end.  Columns 0 and L are always ``_NEG``
    at a sweep exit (column 0 is never written; column L is wiped at
    the completion that wrote it).
    """
    count, last = _walk_jump_chain(ends, starts, 0)
    q = int(ends[last]) if count else -1
    row = np.full(length + 1, _NEG, dtype=np.int64)
    for s in range(1, length):
        tail = tails[s - 1]
        if tail is not None and tail[1] > q:
            row[s] = t0 + tail[0]
    return count, row


def _count_subsequence_hopping(
    db: np.ndarray, episode: Episode, index: DatabaseIndex | None = None
) -> int:
    """Greedy subsequence count via per-symbol sorted position lists.

    Accepts a prebuilt :class:`DatabaseIndex` so batch callers share
    one position extraction across episodes instead of rebuilding
    ``np.flatnonzero(db == item)`` per call.
    """
    index = index if index is not None else DatabaseIndex(db)
    return _count_positions_single(index, episode.items, None)


# ---------------------------------------------------------------------------
# Scalar oracles
# ---------------------------------------------------------------------------

def count_batch_reference(
    db: np.ndarray,
    episodes: list[Episode],
    alphabet_size: int,
    policy: MatchPolicy = MatchPolicy.RESET,
    window: int | None = None,
) -> np.ndarray:
    """Per-character scalar FSM counting — the ground-truth oracle."""
    out = np.zeros(len(episodes), dtype=np.int64)
    for i, ep in enumerate(episodes):
        fsm = EpisodeFSM(ep, alphabet_size, policy, window)
        out[i] = fsm.run(db)
    return out


def count_matrix_reference(
    db: np.ndarray,
    matrix: np.ndarray,
    policy: MatchPolicy = MatchPolicy.RESET,
    window: int | None = None,
) -> np.ndarray:
    """Scalar oracle over raw (E, L) matrices, repeated symbols allowed.

    :class:`~repro.mining.episode.Episode` enforces distinct items
    (Table 1 semantics), but the matrix entry points do not; this oracle
    pins down the batch counters' semantics on that wider input space:

    * ``RESET`` — contiguous (substring) occurrence count, matching the
      n-gram path.  (For distinct items this equals the FSM's RESET
      count; for repeated symbols substring counting is the contract.)
    * ``SUBSEQUENCE`` / ``EXPIRING`` — the scalar FSM recurrences of
      :class:`~repro.mining.fsm.EpisodeFSM`, applied to the raw item
      row.
    """
    db = np.asarray(_check_db(db), dtype=np.int64)
    validate_window(policy, window)
    matrix = as_episode_matrix(matrix)
    out = np.zeros(matrix.shape[0], dtype=np.int64)
    for i in range(matrix.shape[0]):
        items = [int(x) for x in matrix[i]]
        if policy is MatchPolicy.RESET:
            out[i] = _scalar_substring_count(db, items)
        elif policy is MatchPolicy.SUBSEQUENCE:
            out[i] = _scalar_subsequence_count(db, items)
        else:
            out[i] = _scalar_expiring_count(db, items, int(window))  # type: ignore[arg-type]
    return out


def _scalar_substring_count(db: np.ndarray, items: list[int]) -> int:
    length = len(items)
    return sum(
        1
        for start in range(db.size - length + 1)
        if all(db[start + j] == items[j] for j in range(length))
    )


def _scalar_subsequence_count(db: np.ndarray, items: list[int]) -> int:
    state = count = 0
    for c in db:
        if int(c) == items[state]:
            state += 1
            if state == len(items):
                count += 1
                state = 0
    return count


def _scalar_expiring_count(db: np.ndarray, items: list[int], window: int) -> int:
    length = len(items)
    times = [_NEG] * (length + 1)
    times[0] = 0
    count = 0
    for t in range(db.size):
        c = int(db[t])
        for s in range(length, 0, -1):
            if c != items[s - 1]:
                continue
            if s == 1 or t - times[s - 1] <= window:
                times[s] = t
        if times[length] == t:
            count += 1
            for s in range(1, length + 1):
                times[s] = _NEG
    return count
