"""Episode occurrence counting — the paper's "counting step".

This module is the computational heart of the reproduction, in three
tiers (following the HPC guides' profile-then-vectorize discipline):

* :func:`ngram_counts` / :func:`count_batch` under ``RESET`` — a single
  O(n) pass over the database counts *every* length-L episode at once
  via base-N n-gram encoding and ``bincount`` (RESET counting equals
  substring counting; see :mod:`repro.mining.policies`).
* vectorized state-machine sweeps for ``SUBSEQUENCE``/``EXPIRING`` —
  one pass over the database advancing all episodes' FSM states as
  NumPy vectors.
* :func:`count_batch_reference` — the scalar FSM oracle used by
  property tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.mining.episode import Episode, episodes_to_matrix
from repro.mining.fsm import EpisodeFSM
from repro.mining.policies import MatchPolicy, validate_window

#: n-gram encoding uses int64; N**L must stay below 2**62.
_MAX_ENCODED = 2**62


def _check_db(db: np.ndarray) -> np.ndarray:
    db = np.asarray(db)
    if db.ndim != 1:
        raise ValidationError(f"database must be 1-D, got shape {db.shape}")
    return db


def ngram_counts(db: np.ndarray, level: int, alphabet_size: int) -> np.ndarray:
    """Counts of every length-``level`` gram, indexed by base-N encoding.

    Returns an array of length ``alphabet_size ** level`` where entry
    ``sum(code[j] * N**(L-1-j))`` is the number of (possibly not
    distinct-item) contiguous occurrences of that gram.
    """
    db = _check_db(db)
    if level < 1:
        raise ValidationError(f"level must be >= 1, got {level}")
    if alphabet_size < 1:
        raise ValidationError("alphabet_size must be >= 1")
    if alphabet_size**level >= _MAX_ENCODED:
        raise ValidationError(
            f"alphabet {alphabet_size} at level {level} overflows n-gram encoding"
        )
    n = db.size
    if n < level:
        return np.zeros(alphabet_size**level, dtype=np.int64)
    code = db[: n - level + 1].astype(np.int64)
    for j in range(1, level):
        code = code * alphabet_size + db[j : n - level + 1 + j]
    return np.bincount(code, minlength=alphabet_size**level)


def encode_episodes(matrix: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Base-N encode an (E, L) episode matrix to gram indices."""
    enc = matrix[:, 0].astype(np.int64)
    for j in range(1, matrix.shape[1]):
        enc = enc * alphabet_size + matrix[:, j]
    return enc


def count_batch(
    db: np.ndarray,
    episodes: "list[Episode] | np.ndarray",
    alphabet_size: int,
    policy: MatchPolicy = MatchPolicy.RESET,
    window: int | None = None,
) -> np.ndarray:
    """Occurrence counts for a batch of same-length episodes.

    Dispatches to the fastest exact implementation for the policy.
    """
    matrix = (
        episodes
        if isinstance(episodes, np.ndarray)
        else episodes_to_matrix(list(episodes))
    )
    if matrix.ndim != 2:
        raise ValidationError(f"episode matrix must be 2-D, got {matrix.shape}")
    db = _check_db(db)
    validate_window(policy, window)
    if policy is MatchPolicy.RESET:
        grams = ngram_counts(db, matrix.shape[1], alphabet_size)
        return grams[encode_episodes(matrix, alphabet_size)]
    if policy is MatchPolicy.SUBSEQUENCE:
        return _count_subsequence_batch(db, matrix)
    return _count_expiring_batch(db, matrix, int(window))  # type: ignore[arg-type]


def count_episode(
    db: np.ndarray,
    episode: Episode,
    alphabet_size: int,
    policy: MatchPolicy = MatchPolicy.RESET,
    window: int | None = None,
) -> int:
    """Occurrence count for one episode (thin wrapper over the batch path)."""
    if policy is MatchPolicy.SUBSEQUENCE:
        # Position-hopping is much faster than the vector sweep for one
        # episode: greedily jump through per-symbol position lists.
        return _count_subsequence_hopping(_check_db(db), episode)
    return int(
        count_batch(db, [episode], alphabet_size, policy, window)[0]
    )


# ---------------------------------------------------------------------------
# SUBSEQUENCE / EXPIRING vector sweeps
# ---------------------------------------------------------------------------

def _count_subsequence_batch(db: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Greedy non-overlapped counting, all episodes advanced per character."""
    n_eps, length = matrix.shape
    state = np.zeros(n_eps, dtype=np.int64)
    counts = np.zeros(n_eps, dtype=np.int64)
    # needed[e] = matrix[e, state[e]]; gather once per character
    rows = np.arange(n_eps)
    mat = matrix.astype(np.int64)
    for c in np.asarray(db, dtype=np.int64):
        advance = mat[rows, state] == c
        state[advance] += 1
        done = state == length
        if done.any():
            counts[done] += 1
            state[done] = 0
    return counts


def _count_expiring_batch(
    db: np.ndarray, matrix: np.ndarray, window: int
) -> np.ndarray:
    """Windowed counting with per-state latest-timestamp tracking.

    ``times[e, s]`` holds the latest index at which episode ``e``'s
    length-``s`` prefix completed within the window chain.  States are
    updated high-to-low per character so one symbol can both extend an
    existing prefix and re-anchor a fresher one — matching
    :class:`~repro.mining.fsm.EpisodeFSM`'s EXPIRING semantics exactly
    (property-tested in ``tests/test_counting.py``).
    """
    n_eps, length = matrix.shape
    neg = -(1 << 60)
    times = np.full((n_eps, length + 1), neg, dtype=np.int64)
    times[:, 0] = 0  # the empty prefix never expires
    counts = np.zeros(n_eps, dtype=np.int64)
    mat = matrix.astype(np.int64)
    state_cols = np.arange(1, length + 1)
    for t, c in enumerate(np.asarray(db, dtype=np.int64)):
        for s in range(length, 0, -1):
            ok = mat[:, s - 1] == c
            if s > 1:
                ok &= (t - times[:, s - 1]) <= window
            times[ok, s] = t
        done = times[:, length] == t
        if done.any():
            counts[done] += 1
            times[np.ix_(done, state_cols)] = neg  # non-overlap
    return counts


def _count_subsequence_hopping(db: np.ndarray, episode: Episode) -> int:
    """Greedy subsequence count via per-symbol sorted position lists."""
    positions = {item: np.flatnonzero(db == item) for item in set(episode.items)}
    if any(p.size == 0 for p in positions.values()):
        return 0
    count = 0
    cursor = -1
    items = episode.items
    while True:
        for item in items:
            pos = positions[item]
            idx = np.searchsorted(pos, cursor + 1)
            if idx >= pos.size:
                return count
            cursor = int(pos[idx])
        count += 1


# ---------------------------------------------------------------------------
# Scalar oracle
# ---------------------------------------------------------------------------

def count_batch_reference(
    db: np.ndarray,
    episodes: list[Episode],
    alphabet_size: int,
    policy: MatchPolicy = MatchPolicy.RESET,
    window: int | None = None,
) -> np.ndarray:
    """Per-character scalar FSM counting — the ground-truth oracle."""
    out = np.zeros(len(episodes), dtype=np.int64)
    for i, ep in enumerate(episodes):
        fsm = EpisodeFSM(ep, alphabet_size, policy, window)
        out[i] = fsm.run(db)
    return out
