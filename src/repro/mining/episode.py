"""Episodes: ordered item sequences (paper §3.1).

An episode ``A = <i1, i2, ..., iL>`` is an *ordered* sequence — the
paper stresses that temporal mining distinguishes
``{peanut butter, bread} -> {jelly}`` from
``{bread, peanut butter} -> {jelly}``.  Items within one episode are
distinct, consistent with Table 1's count N!/(N-L)! of length-L
episodes over an N-symbol alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ValidationError
from repro.mining.alphabet import Alphabet


@dataclass(frozen=True)
class Episode:
    """An ordered sequence of distinct item codes."""

    items: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ValidationError("episode must contain at least one item")
        if len(set(self.items)) != len(self.items):
            raise ValidationError(
                f"episode items must be distinct (Table 1 semantics), got {self.items}"
            )
        if any(i < 0 for i in self.items):
            raise ValidationError(f"episode items must be non-negative: {self.items}")

    @classmethod
    def from_symbols(cls, symbols: str, alphabet: Alphabet) -> "Episode":
        return cls(tuple(alphabet.code(s) for s in symbols))

    @property
    def length(self) -> int:
        """The episode's level L."""
        return len(self.items)

    @cached_property
    def array(self) -> np.ndarray:
        a = np.array(self.items, dtype=np.uint8)
        a.setflags(write=False)
        return a

    def to_symbols(self, alphabet: Alphabet) -> str:
        return alphabet.decode(self.array)

    def prefix(self) -> "Episode":
        """The length L-1 prefix (used by A-priori candidate generation)."""
        if self.length == 1:
            raise ValidationError("a length-1 episode has no prefix episode")
        return Episode(self.items[:-1])

    def suffix(self) -> "Episode":
        """The length L-1 suffix."""
        if self.length == 1:
            raise ValidationError("a length-1 episode has no suffix episode")
        return Episode(self.items[1:])

    def subepisodes(self) -> list["Episode"]:
        """All length L-1 order-preserving sub-episodes."""
        if self.length == 1:
            return []
        out = []
        for drop in range(self.length):
            items = self.items[:drop] + self.items[drop + 1 :]
            out.append(Episode(items))
        return out

    def extend(self, item: int) -> "Episode":
        """Append a (distinct) item, producing a level L+1 candidate."""
        if item in self.items:
            raise ValidationError(
                f"cannot extend {self.items} with duplicate item {item}"
            )
        return Episode(self.items + (item,))

    def __str__(self) -> str:
        return "<" + ",".join(map(str, self.items)) + ">"


def episodes_to_matrix(episodes: list[Episode]) -> np.ndarray:
    """Stack same-length episodes into an (E, L) uint8 matrix.

    The vectorized counting kernels operate on this matrix form.
    """
    if not episodes:
        raise ValidationError("need at least one episode")
    length = episodes[0].length
    for e in episodes:
        if e.length != length:
            raise ValidationError(
                f"episodes_to_matrix requires uniform length; got {e.length} != {length}"
            )
    return np.stack([e.array for e in episodes]).astype(np.uint8)
