"""Episodes: ordered item sequences (paper §3.1).

An episode ``A = <i1, i2, ..., iL>`` is an *ordered* sequence — the
paper stresses that temporal mining distinguishes
``{peanut butter, bread} -> {jelly}`` from
``{bread, peanut butter} -> {jelly}``.  Items within one episode are
distinct, consistent with Table 1's count N!/(N-L)! of length-L
episodes over an N-symbol alphabet.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.mining.alphabet import Alphabet


class Episode:
    """An ordered sequence of distinct item codes.

    Immutable value object.  Uses ``__slots__`` with the hash
    precomputed at construction: trie insertion
    (:mod:`repro.mining.trie`) and the content-addressed count cache
    key episodes by hash in hot loops, so ``hash()`` must be a slot
    read, not a tuple re-hash per probe.
    """

    __slots__ = ("items", "_hash", "_array")

    items: tuple[int, ...]

    def __init__(self, items: "tuple[int, ...]") -> None:
        items = tuple(items)
        if not items:
            raise ValidationError("episode must contain at least one item")
        if len(set(items)) != len(items):
            raise ValidationError(
                f"episode items must be distinct (Table 1 semantics), got {items}"
            )
        if any(i < 0 for i in items):
            raise ValidationError(f"episode items must be non-negative: {items}")
        object.__setattr__(self, "items", items)
        object.__setattr__(self, "_hash", hash(items))
        object.__setattr__(self, "_array", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Episode is immutable; cannot set {name!r}")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Episode):
            return self.items == other.items
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash  # type: ignore[no-any-return]

    def __repr__(self) -> str:
        return f"Episode(items={self.items!r})"

    def __reduce__(self) -> "tuple[type[Episode], tuple[tuple[int, ...]]]":
        # reconstruct through __init__: the immutability guard blocks
        # the default slot-state restore, and re-validating is cheap
        return (Episode, (self.items,))

    @classmethod
    def from_symbols(cls, symbols: str, alphabet: Alphabet) -> "Episode":
        return cls(tuple(alphabet.code(s) for s in symbols))

    @property
    def length(self) -> int:
        """The episode's level L."""
        return len(self.items)

    @property
    def array(self) -> np.ndarray:
        cached = self._array
        if cached is None:
            cached = np.array(self.items, dtype=np.uint8)
            cached.setflags(write=False)
            object.__setattr__(self, "_array", cached)
        return cached

    def to_symbols(self, alphabet: Alphabet) -> str:
        return alphabet.decode(self.array)

    def prefix(self) -> "Episode":
        """The length L-1 prefix (used by A-priori candidate generation)."""
        if self.length == 1:
            raise ValidationError("a length-1 episode has no prefix episode")
        return Episode(self.items[:-1])

    def suffix(self) -> "Episode":
        """The length L-1 suffix."""
        if self.length == 1:
            raise ValidationError("a length-1 episode has no suffix episode")
        return Episode(self.items[1:])

    def subepisodes(self) -> list["Episode"]:
        """All length L-1 order-preserving sub-episodes."""
        if self.length == 1:
            return []
        out = []
        for drop in range(self.length):
            items = self.items[:drop] + self.items[drop + 1 :]
            out.append(Episode(items))
        return out

    def extend(self, item: int) -> "Episode":
        """Append a (distinct) item, producing a level L+1 candidate."""
        if item in self.items:
            raise ValidationError(
                f"cannot extend {self.items} with duplicate item {item}"
            )
        return Episode(self.items + (item,))

    def __str__(self) -> str:
        return "<" + ",".join(map(str, self.items)) + ">"


def episodes_to_matrix(episodes: list[Episode]) -> np.ndarray:
    """Stack same-length episodes into an (E, L) uint8 matrix.

    The vectorized counting kernels operate on this matrix form.
    """
    if not episodes:
        raise ValidationError("need at least one episode")
    length = episodes[0].length
    for e in episodes:
        if e.length != length:
            raise ValidationError(
                f"episodes_to_matrix requires uniform length; got {e.length} != {length}"
            )
    return np.stack([e.array for e in episodes]).astype(np.uint8)
