"""Item alphabets.

The paper's evaluation uses the 26 uppercase English letters (§5); the
neuroscience motivation maps neuron identifiers onto such symbols.  An
:class:`Alphabet` provides the bidirectional symbol <-> code mapping the
vectorized counting kernels need (databases are stored as ``uint8``
code arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class Alphabet:
    """An ordered set of distinct single-token symbols."""

    symbols: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.symbols:
            raise ValidationError("alphabet must not be empty")
        if len(set(self.symbols)) != len(self.symbols):
            raise ValidationError("alphabet symbols must be distinct")
        if len(self.symbols) > 255:
            raise ValidationError(
                f"alphabet of {len(self.symbols)} symbols exceeds uint8 coding"
            )

    @classmethod
    def from_string(cls, s: str) -> "Alphabet":
        return cls(tuple(s))

    @classmethod
    def of_size(cls, n: int) -> "Alphabet":
        """First ``n`` uppercase letters, then printable extensions."""
        if n < 1:
            raise ValidationError(f"alphabet size must be >= 1, got {n}")
        base = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
        if n > len(base):
            raise ValidationError(f"alphabet size {n} exceeds {len(base)} symbols")
        return cls(tuple(base[:n]))

    @property
    def size(self) -> int:
        return len(self.symbols)

    @cached_property
    def _index(self) -> dict[str, int]:
        return {s: i for i, s in enumerate(self.symbols)}

    def code(self, symbol: str) -> int:
        try:
            return self._index[symbol]
        except KeyError:
            raise ValidationError(
                f"symbol {symbol!r} not in alphabet of size {self.size}"
            ) from None

    def symbol(self, code: int) -> str:
        if not 0 <= code < self.size:
            raise ValidationError(f"code {code} out of range for alphabet")
        return self.symbols[code]

    def encode(self, text: "str | list[str]") -> np.ndarray:
        """Encode a symbol sequence to a uint8 code array."""
        return np.fromiter(
            (self.code(ch) for ch in text), dtype=np.uint8, count=len(text)
        )

    def decode(self, codes: np.ndarray) -> str:
        """Decode a code array back to a symbol string."""
        return "".join(self.symbol(int(c)) for c in np.asarray(codes).ravel())

    def validate_database(self, db: np.ndarray) -> np.ndarray:
        """Check a database array is uint8 codes within this alphabet."""
        db = np.asarray(db)
        if db.ndim != 1:
            raise ValidationError(f"database must be 1-D, got shape {db.shape}")
        if db.dtype != np.uint8:
            raise ValidationError(f"database must be uint8, got {db.dtype}")
        if db.size and int(db.max()) >= self.size:
            raise ValidationError(
                f"database contains code {int(db.max())} >= alphabet size {self.size}"
            )
        return db


#: The paper's alphabet: uppercase A-Z (§5).
UPPERCASE = Alphabet.from_string("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
