"""Measured per-host calibration of the counting-engine crossovers.

The paper's central result is that the best counting configuration is
*multi-dimensional*: it shifts with database size, episode count, and
matching policy, and the crossover locations are hardware facts that
must be measured, not hard-coded.  This module is the host-side
analogue of the paper's dynamic adaptation: a micro-probe harness that
times the registered engines on a small deterministic grid of
``(n, E, policy)`` shapes, fits per-policy crossover boundaries, and
persists them as a versioned profile that
:class:`~repro.mining.engines.AutoEngine` and
:class:`~repro.mining.engines.ShardedEngine` consult at dispatch time.

Profile file format (``calibration.json``)
------------------------------------------
A single JSON object::

    {
      "schema": 1,                 # CALIBRATION_SCHEMA at write time
      "host": "2f0c9ab14d3e",      # host_fingerprint(), or "*" (fixture
                                   # profiles valid on any host)
      "created": "2026-07-27T12:00:00+00:00",
      "created_at": "2026-07-27T12:00:00+00:00",  # same value; the
                                   # documented key ("created" kept for
                                   # pre-staleness readers).  Profiles
                                   # older than the staleness horizon
                                   # (DEFAULT_MAX_PROFILE_AGE_DAYS, or
                                   # REPRO_CALIBRATION_MAX_AGE_DAYS)
                                   # warn once per process on load —
                                   # and are still used.
      "grid": {"sizes": [...], "episodes": [...], "repeats": 2},
      "thresholds": {              # per-policy AutoEngine boundaries
        "subsequence": {"sweep_max_n": 8192,
                        "sweep_chars_per_episode": 16.0},
        "expiring":    {...}
      },
      "sharding": {                # ShardedEngine cost model, or null
        "pool_spawn_s": 0.05,      # spawning+probing the process pool
        "dispatch_s": 0.004,       # per-job dispatch overhead
        "ops_per_sec": 2.0e8,      # inline episode-chars/sec baseline
        "probed_workers": 4        # workers the probe pool held
      },
      "measurements": [...]        # raw probe rows, for transparency
    }

``thresholds`` plug directly into the :class:`AutoEngine` rule (sweep
iff ``n < sweep_max_n`` *and* ``n < sweep_chars_per_episode * E``);
they are fitted by exhaustive search minimizing the measured *regret*
(time lost to picking the slower engine) over the probe grid.
``sharding`` feeds :meth:`ShardingCosts.recommend_workers` and
:meth:`ShardingCosts.recommend_min_shard_work`; it is ``null`` on
platforms whose process pools cannot spawn.

Precedence
----------
Consumers resolve the active profile in this order (first hit wins):

1. an explicit profile object (CLI ``mine --calibration PATH``,
   ``FrequentEpisodeMiner(..., calibration=...)``,
   ``AutoEngine(profile=...)``); an *empty* profile
   (``CalibrationProfile(thresholds={})``) explicitly pins the fixed
   heuristics — CLI ``--no-calibration`` uses this, so it never mutates
   process-global state;
2. :func:`set_active_profile` (process-wide pin; ``None`` disables);
3. the ``REPRO_CALIBRATION`` environment variable (a path);
4. the default path beside ``benchmarks/BENCH_engines.json``
   (:func:`default_profile_path`);
5. no profile: the fixed constants baked into
   :class:`~repro.mining.engines.AutoEngine` /
   :class:`~repro.mining.engines.ShardedEngine`.

Robustness: a missing, corrupted, wrong-schema, or host-mismatched
profile never crashes dispatch — :func:`load_profile` warns and falls
back to the fixed constants (a mismatched host additionally gets
``repro calibrate`` recalibration advice).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import warnings
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import ConfigError, ValidationError
from repro.mining.policies import MatchPolicy
from repro.obs import clock

__all__ = [
    "CALIBRATION_SCHEMA",
    "ANY_HOST",
    "ENV_VAR",
    "MAX_AGE_ENV_VAR",
    "DEFAULT_MAX_PROFILE_AGE_DAYS",
    "PolicyThresholds",
    "ShardingCosts",
    "CalibrationProfile",
    "host_fingerprint",
    "default_profile_path",
    "load_profile",
    "save_profile",
    "active_profile",
    "set_active_profile",
    "reset_active_profile",
    "run_calibration",
    "fit_thresholds",
    "probe_engine_grid",
    "probe_auto_vs_fixed",
    "probe_sharding_costs",
]

#: bump when the profile layout changes; older files fall back to the
#: fixed constants instead of being misread
CALIBRATION_SCHEMA = 1

#: ``host`` value marking a profile valid on any machine (CI fixtures)
ANY_HOST = "*"

#: environment variable naming a profile path (precedence step 3)
ENV_VAR = "REPRO_CALIBRATION"

#: environment variable overriding the staleness age limit, in days
#: (``0`` or negative disables the staleness warning entirely)
MAX_AGE_ENV_VAR = "REPRO_CALIBRATION_MAX_AGE_DAYS"

#: default staleness horizon: profiles older than this warn (once per
#: process) that the measured crossovers may have drifted
DEFAULT_MAX_PROFILE_AGE_DAYS = 30.0

#: probe grid of the full calibration run (policy-sensitive engines are
#: timed on every (n, E) cell); sized so a full run stays in seconds
FULL_SIZES = (512, 2_048, 8_192, 24_576)
FULL_EPISODES = (8, 64, 256)
QUICK_SIZES = (512, 4_096, 16_384)
QUICK_EPISODES = (16, 128)

#: window used for the EXPIRING probe cells (mid-range: tight enough to
#: exercise expiry, loose enough that counts stay nonzero)
PROBE_WINDOW = 6

#: episode length of the probe matrices (level-2 shapes dominate real
#: mining runs: the candidate space peaks there)
PROBE_LEVEL = 2

PROBE_SEED = 20_090_525  # IPDPS 2009

#: clamps on the min_shard_work recommendation, so a wildly noisy
#: dispatch probe can never disable sharding or shard everything
MIN_SHARD_WORK_FLOOR = 1 << 18
MIN_SHARD_WORK_CEIL = 1 << 24


def host_fingerprint() -> str:
    """A short stable identity for *this* host's performance envelope.

    Hashes the machine/OS/Python/NumPy identity plus the CPU count —
    the facts that move the measured crossovers.  Deliberately excludes
    anything ephemeral (load, frequency scaling); a profile is advisory
    and exactness never depends on it.
    """
    parts = (
        platform.machine(),
        platform.system(),
        platform.python_implementation(),
        ".".join(platform.python_version_tuple()[:2]),
        np.__version__,
        str(os.cpu_count() or 1),
    )
    return hashlib.sha1("|".join(parts).encode()).hexdigest()[:12]


def default_profile_path() -> "Path | None":
    """``benchmarks/calibration.json`` beside ``BENCH_engines.json``.

    Resolved from the source layout; ``None`` when the package is
    installed without its benchmarks directory (site-packages).
    """
    bench_dir = Path(__file__).resolve().parents[3] / "benchmarks"
    return bench_dir / "calibration.json" if bench_dir.is_dir() else None


@dataclass(frozen=True)
class PolicyThresholds:
    """Fitted AutoEngine crossover boundaries for one policy.

    The sweep is chosen iff ``n < sweep_max_n`` and
    ``n < sweep_chars_per_episode * n_episodes`` — the same rule shape
    as the fixed constants, with measured values.
    """

    sweep_max_n: int
    sweep_chars_per_episode: float

    def prefers_sweep(self, n: int, n_episodes: int) -> bool:
        return (
            n < self.sweep_max_n
            and n < self.sweep_chars_per_episode * n_episodes
        )

    def as_dict(self) -> dict:
        return {
            "sweep_max_n": int(self.sweep_max_n),
            "sweep_chars_per_episode": float(self.sweep_chars_per_episode),
        }


@dataclass(frozen=True)
class ShardingCosts:
    """Measured process-pool cost model for :class:`ShardedEngine`."""

    #: seconds to spawn + probe the worker pool (paid once per run scope)
    pool_spawn_s: float
    #: seconds of per-job dispatch overhead (paid on every sharded call)
    dispatch_s: float
    #: inline counting throughput (episode-chars/sec) the overhead
    #: competes against
    ops_per_sec: float
    #: workers the probe pool held
    probed_workers: int

    def recommend_workers(self, cpu_count: "int | None" = None) -> int:
        """Worker count for this host (bounded by what was probed)."""
        cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
        return max(1, min(cpu, self.probed_workers, 8))

    def recommend_min_shard_work(self) -> int:
        """Smallest ``n x E`` worth sharding.

        A sharded call pays ``dispatch_s`` before any worker helps, so
        sharding only wins once the inline time is a few multiples of
        that: ``work / ops_per_sec >= 4 * dispatch_s``.  Clamped so a
        noisy probe can neither disable sharding nor shard trivia.
        """
        if self.ops_per_sec <= 0:
            return MIN_SHARD_WORK_FLOOR
        work = int(4.0 * self.dispatch_s * self.ops_per_sec)
        return max(MIN_SHARD_WORK_FLOOR, min(work, MIN_SHARD_WORK_CEIL))

    def per_candidate_dispatch_ms(self) -> float:
        """Measured host-side handling cost per dispatched record (ms).

        The dispatch probe times a ``probed_workers``-record MapReduce
        round trip, so per record it measured
        ``dispatch_s / probed_workers`` — the per-candidate host
        overhead :class:`~repro.mining.pipeline.PipelinedMiner` charges
        for generation/reconciliation work hidden behind a kernel
        (previously a hard-coded default).  Floored at 1 µs so a
        degenerate probe never models free host work.
        """
        per_record_s = self.dispatch_s / max(1, self.probed_workers)
        return max(1e-6, per_record_s) * 1e3

    def as_dict(self) -> dict:
        return {
            "pool_spawn_s": float(self.pool_spawn_s),
            "dispatch_s": float(self.dispatch_s),
            "ops_per_sec": float(self.ops_per_sec),
            "probed_workers": int(self.probed_workers),
        }


@dataclass(frozen=True)
class CalibrationProfile:
    """A persisted per-host engine calibration (see module docstring)."""

    thresholds: "dict[str, PolicyThresholds]"
    sharding: "ShardingCosts | None" = None
    host: str = ANY_HOST
    created: str = ""
    schema: int = CALIBRATION_SCHEMA
    grid: dict = field(default_factory=dict)
    measurements: tuple = ()

    def thresholds_for(self, policy: MatchPolicy) -> "PolicyThresholds | None":
        return self.thresholds.get(policy.value)

    def matches_host(self) -> bool:
        return self.host == ANY_HOST or self.host == host_fingerprint()

    def age_days(self, now: "datetime | None" = None) -> "float | None":
        """Profile age in days, or ``None`` when ``created`` is absent
        or unparsable (legacy files; staleness then cannot be judged)."""
        if not self.created:
            return None
        try:
            created = datetime.fromisoformat(self.created)
        except ValueError:
            return None
        if created.tzinfo is None:
            created = created.replace(tzinfo=timezone.utc)
        # repro: noqa REP006 staleness compares provenance stamps, never counting state
        now = now if now is not None else datetime.now(timezone.utc)
        return (now - created).total_seconds() / 86_400.0

    def to_payload(self) -> dict:
        return {
            "schema": self.schema,
            "host": self.host,
            # both spellings: "created_at" is the documented key,
            # "created" keeps pre-staleness readers working
            "created": self.created,
            "created_at": self.created,
            "grid": self.grid,
            "thresholds": {
                policy: t.as_dict() for policy, t in sorted(self.thresholds.items())
            },
            "sharding": self.sharding.as_dict() if self.sharding else None,
            "measurements": list(self.measurements),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CalibrationProfile":
        if not isinstance(payload, dict):
            raise ValidationError("calibration profile must be a JSON object")
        schema = payload.get("schema")
        if schema != CALIBRATION_SCHEMA:
            raise ValidationError(
                f"calibration schema {schema!r} != supported "
                f"{CALIBRATION_SCHEMA}"
            )
        raw = payload.get("thresholds")
        if not isinstance(raw, dict):
            raise ValidationError("calibration profile lacks 'thresholds'")
        thresholds: dict[str, PolicyThresholds] = {}
        for policy, t in raw.items():
            MatchPolicy(policy)  # unknown policy names are a schema error
            thresholds[policy] = PolicyThresholds(
                sweep_max_n=int(t["sweep_max_n"]),
                sweep_chars_per_episode=float(t["sweep_chars_per_episode"]),
            )
        raw_sharding = payload.get("sharding")
        sharding = None
        if raw_sharding is not None:
            sharding = ShardingCosts(
                pool_spawn_s=float(raw_sharding["pool_spawn_s"]),
                dispatch_s=float(raw_sharding["dispatch_s"]),
                ops_per_sec=float(raw_sharding["ops_per_sec"]),
                probed_workers=int(raw_sharding["probed_workers"]),
            )
        return cls(
            thresholds=thresholds,
            sharding=sharding,
            host=str(payload.get("host", ANY_HOST)),
            created=str(payload.get("created_at") or payload.get("created", "")),
            schema=int(schema),
            grid=payload.get("grid", {}) or {},
            measurements=tuple(payload.get("measurements", ())),
        )


def save_profile(profile: CalibrationProfile, path: "Path | str") -> Path:
    """Write ``profile`` as ``calibration.json`` at ``path``.

    The write is atomic (temp file + ``os.replace``;
    :mod:`repro.resilience.atomic`): a crash or ^C mid-calibrate leaves
    any previous profile intact instead of a half-written file that
    every later run would reject with a corrupt-profile warning.
    """
    from repro.resilience.atomic import atomic_write_text

    return atomic_write_text(
        path, json.dumps(profile.to_payload(), indent=2) + "\n"
    )


#: one-time latch for the staleness warning (advisory: a stale profile
#: is still *used*, unlike host/schema mismatches); reset alongside the
#: ambient cache by :func:`reset_active_profile`
_stale_warned = False


def _resolved_max_age_days(max_age_days: "float | None") -> float:
    if max_age_days is not None:
        return float(max_age_days)
    env = os.environ.get(MAX_AGE_ENV_VAR)
    if env:
        try:
            return float(env)
        except ValueError:
            warnings.warn(
                f"ignoring non-numeric {MAX_AGE_ENV_VAR}={env!r}",
                RuntimeWarning,
                stacklevel=3,
            )
    return DEFAULT_MAX_PROFILE_AGE_DAYS


def _warn_if_stale(
    profile: CalibrationProfile, path: Path, max_age_days: "float | None"
) -> None:
    """Once per process, flag a profile past the staleness horizon.

    Staleness is advisory — measured crossovers drift with OS/library
    updates but never affect exactness — so the profile is still used;
    the warning just carries the recalibration hint.  A profile without
    a parsable ``created_at`` (legacy files) cannot be judged and stays
    silent.
    """
    global _stale_warned
    if _stale_warned:
        return
    limit = _resolved_max_age_days(max_age_days)
    if limit <= 0:
        return  # staleness checking disabled
    age = profile.age_days()
    if age is None or age <= limit:
        return
    _stale_warned = True
    warnings.warn(
        f"calibration profile {path} is {age:.0f} days old "
        f"(staleness limit {limit:g} days; configure via "
        f"{MAX_AGE_ENV_VAR}); the measured crossovers may have drifted "
        "— refresh with `repro calibrate`",
        RuntimeWarning,
        stacklevel=3,
    )


def load_profile(
    path: "Path | str",
    *,
    require_host: bool = True,
    max_age_days: "float | None" = None,
) -> "CalibrationProfile | None":
    """Load a profile, degrading to ``None`` instead of crashing.

    A missing file is a quiet ``None``; a corrupted or wrong-schema
    file warns and returns ``None`` (dispatch falls back to the fixed
    constants).  When ``require_host`` is true, a fingerprint mismatch
    also warns — with recalibration advice — and returns ``None``;
    explicit CLI paths pass ``require_host=False`` to honor the user's
    choice while still surfacing the advice.  A profile older than
    ``max_age_days`` (default :data:`DEFAULT_MAX_PROFILE_AGE_DAYS`,
    overridable via the :data:`MAX_AGE_ENV_VAR` environment variable;
    ``<= 0`` disables) warns once per process — and is still used:
    staleness is advice, not an error.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        profile = CalibrationProfile.from_payload(payload)
    except (ValidationError, ValueError, KeyError, TypeError, OSError) as exc:
        warnings.warn(
            f"ignoring unreadable calibration profile {path}: {exc}; "
            "falling back to fixed engine heuristics "
            "(regenerate with `repro calibrate`)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if not profile.matches_host():
        warnings.warn(
            f"calibration profile {path} was measured on host "
            f"{profile.host!r} but this is {host_fingerprint()!r}; "
            "run `repro calibrate` to re-measure"
            + ("" if require_host else " (using it anyway: explicit path)"),
            RuntimeWarning,
            stacklevel=2,
        )
        if require_host:
            return None
    _warn_if_stale(profile, path, max_age_days)
    return profile


# ---------------------------------------------------------------------------
# Ambient (process-wide) profile resolution
# ---------------------------------------------------------------------------

_UNSET = object()
_active: "CalibrationProfile | None | object" = _UNSET


def set_active_profile(profile: "CalibrationProfile | None") -> None:
    """Pin the ambient profile (``None`` disables calibration entirely)."""
    global _active
    _active = profile


def reset_active_profile() -> None:
    """Forget any pinned/cached ambient profile (re-resolve lazily).

    Also re-arms the one-time staleness warning: after ``repro
    calibrate`` rewrites the file (or a test swaps profiles), the next
    stale load should speak up again.
    """
    global _active, _stale_warned
    _active = _UNSET
    _stale_warned = False


def active_profile() -> "CalibrationProfile | None":
    """The ambient profile: pinned value, else env var, else default path.

    Resolution is memoized; :func:`reset_active_profile` clears it
    (tests, or after `repro calibrate` rewrote the default file).
    """
    global _active
    if _active is not _UNSET:
        return _active  # type: ignore[return-value]
    env = os.environ.get(ENV_VAR)
    if env:
        _active = load_profile(env)
    else:
        default = default_profile_path()
        _active = load_profile(default) if default is not None else None
    return _active  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Micro-probe harness
# ---------------------------------------------------------------------------

def _time_best(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = clock.now()
        fn()
        best = min(best, clock.now() - t0)
    return best


def _probe_matrix(rng: np.random.Generator, n_episodes: int,
                  alphabet_size: int) -> np.ndarray:
    """Deterministic level-``PROBE_LEVEL`` episode batch (distinct rows
    are irrelevant to timing; repeated symbols are allowed downstream)."""
    return rng.integers(
        0, alphabet_size, (n_episodes, PROBE_LEVEL)
    ).astype(np.uint8)


def probe_engine_grid(
    sizes: "tuple[int, ...]" = FULL_SIZES,
    episode_counts: "tuple[int, ...]" = FULL_EPISODES,
    repeats: int = 2,
    alphabet_size: int = 26,
    seed: int = PROBE_SEED,
) -> "list[dict]":
    """Time ``vector-sweep`` vs ``position-hop`` on every grid cell.

    Returns one row per (policy, n, E) with both engines' best-of
    seconds.  RESET is excluded: both engines take the same O(n) n-gram
    path there, so there is no crossover to measure.
    """
    from repro.mining.counting import DatabaseIndex
    from repro.mining.engines import get_engine

    rng = np.random.default_rng(seed)
    rows: list[dict] = []
    sweep = get_engine("vector-sweep")
    hop = get_engine("position-hop")
    for n in sizes:
        db = rng.integers(0, alphabet_size, n).astype(np.uint8)
        index = DatabaseIndex(db)
        for n_eps in episode_counts:
            matrix = _probe_matrix(rng, n_eps, alphabet_size)
            for policy, window in (
                (MatchPolicy.SUBSEQUENCE, None),
                (MatchPolicy.EXPIRING, PROBE_WINDOW),
            ):
                t_sweep = _time_best(
                    # repro: noqa REP003 probe times the bare counting call; scope entry would pollute the measurement
                    lambda: sweep.count(db, matrix, alphabet_size, policy,
                                        window),
                    repeats,
                )
                t_hop = _time_best(
                    # repro: noqa REP003 probe times the bare counting call; scope entry would pollute the measurement
                    lambda: hop.count(db, matrix, alphabet_size, policy,
                                      window, index=index),
                    repeats,
                )
                rows.append(
                    {
                        "policy": policy.value,
                        "n": n,
                        "episodes": n_eps,
                        "sweep_s": round(t_sweep, 6),
                        "hop_s": round(t_hop, 6),
                    }
                )
    return rows


def probe_auto_vs_fixed(
    profile: "CalibrationProfile | None",
    sizes: "tuple[int, ...]" = QUICK_SIZES,
    episode_counts: "tuple[int, ...]" = QUICK_EPISODES,
    repeats: int = 2,
    alphabet_size: int = 26,
    seed: int = PROBE_SEED,
    fixed_rows: "list[dict] | None" = None,
) -> "list[dict]":
    """Time calibrated-auto against both fixed engines on the grid.

    One row per (policy, n, E): the fixed engines' best-of seconds, the
    calibrated :class:`AutoEngine`'s seconds, and the engine it chose —
    the evidence behind the ``auto_calibration`` benchmark series
    (``check_regression.check_auto_calibration`` asserts auto stays
    within tolerance of the best fixed engine).

    ``fixed_rows`` (rows shaped like :func:`probe_engine_grid` output —
    typically ``profile.measurements`` when the profile was fitted on
    the same grid and seed) supplies already-measured sweep/hop seconds
    so only the auto column is timed; cells absent from it are measured
    fresh.
    """
    from repro.mining.counting import DatabaseIndex
    from repro.mining.engines import AutoEngine, get_engine

    auto = AutoEngine(profile=profile)
    sweep = get_engine("vector-sweep")
    hop = get_engine("position-hop")
    measured = {
        (row["policy"], row["n"], row["episodes"]): row
        for row in (fixed_rows or ())
    }
    rng = np.random.default_rng(seed)
    rows: list[dict] = []
    for n in sizes:
        db = rng.integers(0, alphabet_size, n).astype(np.uint8)
        index = DatabaseIndex(db)
        for n_eps in episode_counts:
            matrix = _probe_matrix(rng, n_eps, alphabet_size)
            for policy, window in (
                (MatchPolicy.SUBSEQUENCE, None),
                (MatchPolicy.EXPIRING, PROBE_WINDOW),
            ):
                prior = measured.get((policy.value, n, n_eps))
                if prior is not None:
                    t_sweep, t_hop = prior["sweep_s"], prior["hop_s"]
                else:
                    t_sweep = _time_best(
                        # repro: noqa REP003 probe times the bare counting call; scope entry would pollute the measurement
                        lambda: sweep.count(db, matrix, alphabet_size, policy,
                                            window),
                        repeats,
                    )
                    t_hop = _time_best(
                        # repro: noqa REP003 probe times the bare counting call; scope entry would pollute the measurement
                        lambda: hop.count(db, matrix, alphabet_size, policy,
                                          window, index=index),
                        repeats,
                    )
                t_auto = _time_best(
                    lambda: auto.count(db, matrix, alphabet_size, policy,
                                       window, index=index),
                    repeats,
                )
                best_s = min(t_sweep, t_hop)
                rows.append(
                    {
                        "policy": policy.value,
                        "n": n,
                        "episodes": n_eps,
                        "sweep_s": round(t_sweep, 6),
                        "hop_s": round(t_hop, 6),
                        "auto_s": round(t_auto, 6),
                        "chosen": auto.select(n, n_eps, policy).name,
                        "best_engine": (
                            "vector-sweep" if t_sweep <= t_hop
                            else "position-hop"
                        ),
                        "ratio_vs_best": round(t_auto / best_s, 3)
                        if best_s > 0 else 1.0,
                    }
                )
    return rows


def fit_thresholds(rows: "list[dict]") -> "dict[str, PolicyThresholds]":
    """Fit per-policy crossover boundaries from probe rows.

    Exhaustive search over candidate ``(sweep_max_n,
    chars_per_episode)`` pairs (grid values plus the fixed defaults),
    scoring each by the *regret* it would incur on the measured grid —
    the summed time lost on cells where the rule picks the slower
    engine.  Minimizing regret (not misclassification count) makes
    don't-care cells, where both engines tie, cost nothing.
    """
    from repro.mining.engines import AutoEngine

    # the fixed fallback constants anchor the candidate set and the
    # tie-break, so profiles degrade gracefully toward them when the
    # grid cannot distinguish (never a hard-coded copy that can drift)
    default_n = int(AutoEngine.SWEEP_MAX_N)
    default_c = float(AutoEngine.SWEEP_CHARS_PER_EPISODE)
    by_policy: dict[str, list[dict]] = {}
    for row in rows:
        by_policy.setdefault(row["policy"], []).append(row)
    fitted: dict[str, PolicyThresholds] = {}
    for policy, cells in by_policy.items():
        ns = sorted({c["n"] for c in cells})
        ratios = sorted({c["n"] / c["episodes"] for c in cells})
        n_candidates = [0] + ns + [2 * ns[-1]] + [default_n]
        # a hair above each grid value so `n < bound` includes the cell
        n_candidates += [n + 1 for n in ns]
        c_candidates = sorted(
            {1.0, default_c, *(r for r in ratios),
             *(r * 1.01 for r in ratios)}
        )
        best: "tuple[float, float, PolicyThresholds] | None" = None
        for max_n in sorted(set(n_candidates)):
            for chars in c_candidates:
                t = PolicyThresholds(int(max_n), float(chars))
                regret = 0.0
                for c in cells:
                    pick_sweep = t.prefers_sweep(c["n"], c["episodes"])
                    chosen = c["sweep_s"] if pick_sweep else c["hop_s"]
                    regret += chosen - min(c["sweep_s"], c["hop_s"])
                # tie-break toward the fixed defaults (smallest distance
                # keeps profiles stable when the grid cannot distinguish)
                distance = abs(max_n - default_n) + abs(chars - default_c)
                key = (regret, distance)
                if best is None or key < (best[0], best[1]):
                    best = (regret, distance, t)
        assert best is not None  # by_policy never yields empty cell lists
        fitted[policy] = best[2]
    return fitted


def probe_sharding_costs(
    workers: "int | None" = None,
    n: int = 24_576,
    n_episodes: int = 256,
    repeats: int = 2,
    alphabet_size: int = 26,
    seed: int = PROBE_SEED,
) -> "ShardingCosts | None":
    """Measure pool spawn + dispatch overheads and inline throughput.

    Returns ``None`` on platforms whose process pools cannot spawn
    (sandboxes) — :class:`ShardedEngine` keeps its fixed defaults there.
    """
    from repro.mapreduce.cpu_engine import ProcessPoolEngine
    from repro.mapreduce.types import KeyValue, MapReduceJob
    from repro.mining.counting import DatabaseIndex
    from repro.mining.engines import get_engine

    w = workers if workers is not None else min(os.cpu_count() or 1, 8)
    t0 = clock.now()
    pool = ProcessPoolEngine(workers=w)
    try:
        pool.__enter__()
    except (OSError, RuntimeError):
        return None
    spawn_s = clock.now() - t0
    try:
        job = MapReduceJob(
            inputs=[KeyValue(i, i) for i in range(w)],
            mapper=_identity_mapper,
            reducer=_first_value_reducer,
        )
        dispatch_s = _time_best(lambda: pool.run(job), repeats)
    finally:
        pool.__exit__(None, None, None)
    rng = np.random.default_rng(seed)
    db = rng.integers(0, alphabet_size, n).astype(np.uint8)
    matrix = _probe_matrix(rng, n_episodes, alphabet_size)
    index = DatabaseIndex(db)
    hop = get_engine("position-hop")
    inline_s = _time_best(
        # repro: noqa REP003 probe times the bare counting call; scope entry would pollute the measurement
        lambda: hop.count(db, matrix, alphabet_size,
                          MatchPolicy.SUBSEQUENCE, None, index=index),
        repeats,
    )
    ops = (n * n_episodes / inline_s) if inline_s > 0 else 0.0
    return ShardingCosts(
        pool_spawn_s=round(spawn_s, 6),
        dispatch_s=round(max(dispatch_s, 1e-6), 6),
        ops_per_sec=round(ops, 1),
        probed_workers=w,
    )


def _identity_mapper(record: object) -> "list[object]":
    """Trivial mapper for the dispatch probe (module-level: picklable)."""
    return [record]


def _first_value_reducer(key: object, values: list) -> object:
    return values[0]


def run_calibration(
    quick: bool = False,
    workers: "int | None" = None,
    repeats: int = 2,
    include_sharding: bool = True,
    host: "str | None" = None,
    recorder: "object | None" = None,
) -> CalibrationProfile:
    """Run the full micro-probe harness and return a fitted profile.

    ``quick`` shrinks the grid (used by benchmarks and tests);
    ``host=ANY_HOST`` stamps a fixture profile valid on any machine.
    ``recorder`` (a :class:`~repro.obs.recorder.Recorder`) traces the
    probe phases — grid probing, threshold fitting, the sharding-cost
    probe — as spans, with the probed cell count as a counter.
    """
    from repro.obs.recorder import resolve_recorder

    rec = resolve_recorder(recorder)  # type: ignore[arg-type]
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    sizes = QUICK_SIZES if quick else FULL_SIZES
    episode_counts = QUICK_EPISODES if quick else FULL_EPISODES
    with rec.span("probe-grid", sizes=len(sizes),
                  episodes=len(episode_counts), repeats=repeats):
        rows = probe_engine_grid(sizes, episode_counts, repeats=repeats)
    rec.count("calibration.probe_cells", len(rows))
    with rec.span("fit-thresholds"):
        thresholds = fit_thresholds(rows)
    with rec.span("probe-sharding", included=include_sharding):
        sharding = (
            probe_sharding_costs(workers=workers, repeats=repeats)
            if include_sharding
            else None
        )
    return CalibrationProfile(
        thresholds=thresholds,
        sharding=sharding,
        host=host if host is not None else host_fingerprint(),
        created=clock.utc_stamp(),
        schema=CALIBRATION_SCHEMA,
        grid={
            "sizes": list(sizes),
            "episodes": list(episode_counts),
            "repeats": repeats,
            "level": PROBE_LEVEL,
            "window": PROBE_WINDOW,
        },
        measurements=tuple(rows),
    )
