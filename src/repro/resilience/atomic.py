"""Atomic file writes: temp file in the target directory + ``os.replace``.

A reader racing an interrupted writer must observe either the old
complete file or the new complete file — never a prefix of the new one.
``os.replace`` gives exactly that on every platform the repo targets,
provided the temp file lives on the same filesystem as the target
(hence: same directory).  The calibration profile
(:func:`repro.mining.calibration.save_profile`), the benchmark
trajectory (``benchmarks/bench_engines.py``), and the streaming
checkpoint writer (:mod:`repro.streaming.checkpoint`) all write through
here, which is what makes their corrupt-file warning/error paths
reachable only by genuine disk corruption, not by an untimely ^C.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


@contextmanager
def atomic_open(path: "str | Path", mode: str = "w") -> "Iterator":
    """Open a temp file that replaces ``path`` on a clean exit.

    The handle yielded is a regular (seekable) file object in ``mode``
    (``"w"`` text/UTF-8 or ``"wb"`` binary).  On normal exit the temp
    file is fsynced and atomically renamed over ``path``; on any
    exception it is unlinked and ``path`` is left untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_open supports 'w' and 'wb', got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(
            fd, mode, encoding=None if mode == "wb" else "utf-8"
        ) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: "str | Path", text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    path = Path(path)
    with atomic_open(path, "w") as fh:
        fh.write(text)
    return path


def atomic_write_bytes(path: "str | Path", data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``."""
    path = Path(path)
    with atomic_open(path, "wb") as fh:
        fh.write(data)
    return path
