"""Deterministic fault injection the engines and stores honor under test.

Real failure modes — a worker process dying mid-shard, a worker hanging,
a platform refusing to spawn pools, a checkpoint torn by a crash — are
timing accidents, which makes asserting *exact recovery* flaky by
construction.  A :class:`FaultPlan` turns each of them into a named,
seeded event: it says which shard *submission* (a deterministic
sequence number: shards are submitted in input order, and re-dispatch
after a respawn is ordered too) crashes, hangs, or raises, how many
upcoming pool-spawn attempts fail, and whether the next checkpoint
write is torn or corrupted.

The hooks are consulted only in the parent process, at well-defined
points:

* :meth:`FaultPlan.take_shard_fault` — by the sharded engine as it
  submits each shard; a drawn fault is stamped into the *submitted*
  payload copy (the clean record is kept for any in-process recount),
  and the worker honors the stamp (``os._exit`` for ``crash``, a sleep
  for ``hang``, ``RuntimeError`` for ``raise``).
* :meth:`FaultPlan.take_pool_spawn_failure` — by
  ``ShardedEngine._make_pool`` before a real spawn attempt.
* :meth:`FaultPlan.take_checkpoint_fault` — by the streaming
  checkpoint writer after a successful atomic write, to truncate
  (``"torn"``) or bit-flip (``"corrupt"``) the file on disk.

Each fault fires exactly once (plans are consumed), so a respawned pool
re-running the same logical shard does not crash again — matching the
real-world "transient failure" the supervisor is designed to survive.
With no plan installed every hook is a cheap ``None`` check.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "ShardFault",
    "FaultPlan",
    "install_plan",
    "clear_plan",
    "active_plan",
    "inject",
]

#: shard fault kinds a worker honors (see ``_sharded_mapper``)
SHARD_FAULT_KINDS = ("crash", "hang", "raise")
#: checkpoint fault kinds the checkpoint writer honors
CHECKPOINT_FAULT_KINDS = ("torn", "corrupt")


@dataclass(frozen=True)
class ShardFault:
    """One injected shard failure: what happens to that submission."""

    kind: str  # "crash" | "hang" | "raise"
    #: how long a "hang" sleeps in the worker (parent deadlines are
    #: meant to expire well before this)
    hang_s: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in SHARD_FAULT_KINDS:
            raise ValueError(
                f"shard fault kind must be one of {SHARD_FAULT_KINDS}, "
                f"got {self.kind!r}"
            )


@dataclass
class FaultPlan:
    """A consumable schedule of failures for one test scenario.

    ``shard_faults`` maps global shard *submission* sequence numbers
    (0-based, counted across every submit the plan observes) to the
    fault injected into that submission.  ``pool_spawn_failures`` fails
    that many upcoming pool-spawn attempts.  ``checkpoint_fault``
    damages the next checkpoint write (``"torn"`` truncates the file,
    ``"corrupt"`` flips one byte).  ``fired`` records what actually
    triggered, in order — tests assert against it.
    """

    shard_faults: "dict[int, ShardFault]" = field(default_factory=dict)
    pool_spawn_failures: int = 0
    checkpoint_fault: "str | None" = None
    #: submissions observed so far (the sequence-number clock)
    submissions: int = 0
    #: (kind, submission-or--1) tuples, in firing order
    fired: "list[tuple[int | str, ...]]" = field(default_factory=list)

    def __post_init__(self) -> None:
        if (
            self.checkpoint_fault is not None
            and self.checkpoint_fault not in CHECKPOINT_FAULT_KINDS
        ):
            raise ValueError(
                f"checkpoint fault must be one of {CHECKPOINT_FAULT_KINDS}, "
                f"got {self.checkpoint_fault!r}"
            )

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_submissions: int,
        kind: str = "crash",
        hang_s: float = 5.0,
    ) -> "FaultPlan":
        """A plan hitting one seeded-random submission in ``[0, n)``."""
        if n_submissions < 1:
            raise ValueError("n_submissions must be >= 1")
        k = random.Random(seed).randrange(n_submissions)
        return cls(shard_faults={k: ShardFault(kind, hang_s=hang_s)})

    # -- consumption hooks --------------------------------------------

    def take_shard_fault(self) -> "ShardFault | None":
        """Draw the fault (if any) for the next shard submission."""
        seq = self.submissions
        self.submissions = seq + 1
        fault = self.shard_faults.pop(seq, None)
        if fault is not None:
            self.fired.append((fault.kind, seq))
        return fault

    def take_pool_spawn_failure(self) -> bool:
        """True if the upcoming pool-spawn attempt must fail."""
        if self.pool_spawn_failures > 0:
            self.pool_spawn_failures -= 1
            self.fired.append(("pool-spawn", -1))
            return True
        return False

    def take_checkpoint_fault(self) -> "str | None":
        """The damage (if any) to apply to the next checkpoint write."""
        fault, self.checkpoint_fault = self.checkpoint_fault, None
        if fault is not None:
            self.fired.append((f"checkpoint-{fault}", -1))
        return fault


_lock = threading.Lock()
_active: "FaultPlan | None" = None


def install_plan(plan: "FaultPlan | None") -> None:
    """Install ``plan`` as the process-wide active fault plan."""
    global _active
    with _lock:
        _active = plan


def clear_plan() -> None:
    """Remove any active fault plan."""
    install_plan(None)


def active_plan() -> "FaultPlan | None":
    """The installed plan, or ``None`` (the production state)."""
    return _active


@contextmanager
def inject(plan: FaultPlan) -> "Iterator[FaultPlan]":
    """Install ``plan`` for the duration of a ``with`` block."""
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()
