"""Fault tolerance for long-running mining: supervision, faults, atomicity.

The paper's engines are exact but assume a healthy host: a worker death
used to silently recompute the whole counting call in-process, a killed
stream run lost all carried state, and an interrupted profile write
could leave a torn JSON file behind.  This package gives the counting
engines and the streaming subsystem explicit *failure semantics*:

* :mod:`repro.resilience.supervisor` — supervised shard execution:
  every shard of a pooled counting call is a tracked future with an
  optional per-shard deadline; a broken pool is respawned once with
  seeded exponential backoff and only *unfinished* shards are
  re-dispatched; hung shards past their deadline are reclaimed and
  recounted in-process; repeated failure degrades down an explicit
  chain (sharded -> calibrated single-process engine) with a structured
  :class:`~repro.resilience.supervisor.DegradationEvent` recorded on
  the run scope.  :class:`~repro.mining.engines.ShardedEngine` runs
  every pooled job through this supervisor.
* :mod:`repro.resilience.faults` — deterministic fault injection: a
  seeded :class:`~repro.resilience.faults.FaultPlan` names exactly
  which shard submission crashes its worker, hangs, or raises, how many
  pool spawns fail, and whether a checkpoint write is torn or
  corrupted.  The engines and the streaming checkpoint writer honor the
  installed plan, which is what lets ``tests/test_resilience.py``
  assert *exact result equality* under every failure mode instead of
  hoping a real worker dies at the right moment.  No plan installed
  (production) means zero overhead and zero behaviour change.
* :mod:`repro.resilience.atomic` — write-temp + ``os.replace`` file
  updates, so an interrupted writer can never leave a torn
  ``calibration.json``, ``BENCH_engines.json``, or stream checkpoint:
  readers observe either the old complete file or the new complete
  file, never a prefix.
* :mod:`repro.resilience.artifacts` — schema-checked JSON artifact IO:
  :func:`~repro.resilience.artifacts.read_json_artifact` turns missing
  and truncated files into :class:`~repro.errors.ArtifactError` with a
  regeneration hint, and
  :func:`~repro.resilience.artifacts.write_json_artifact` is the
  matching atomic writer (the fix the REP002 lint rule points at; see
  ``CONTRACTS.md``).

Everything here is advisory-to-exactness: supervision and fault
recovery move *where* counting happens (pool, respawned pool, or
in-process), never what is counted — the same invariant the calibration
layer already obeys.
"""

from repro.resilience.artifacts import read_json_artifact, write_json_artifact
from repro.resilience.atomic import atomic_open, atomic_write_bytes, atomic_write_text
from repro.resilience.faults import FaultPlan, ShardFault, active_plan, clear_plan, inject, install_plan
from repro.resilience.supervisor import BackoffPolicy, DegradationEvent, ShardSupervisor

__all__ = [
    "read_json_artifact",
    "write_json_artifact",
    "atomic_open",
    "atomic_write_bytes",
    "atomic_write_text",
    "FaultPlan",
    "ShardFault",
    "active_plan",
    "clear_plan",
    "inject",
    "install_plan",
    "BackoffPolicy",
    "DegradationEvent",
    "ShardSupervisor",
]
