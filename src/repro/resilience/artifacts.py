"""Schema-checked JSON artifact IO: read loudly, write atomically.

The repo's JSON artifacts — the benchmark trajectory
(``benchmarks/BENCH_engines.json``), calibration profiles, the lint
baseline — share two failure modes: a *missing* file (never generated,
wrong path) and a *truncated or mangled* file (disk corruption; atomic
writes make an untimely ^C impossible, see
:mod:`repro.resilience.atomic`).  :func:`read_json_artifact` turns both
into :class:`~repro.errors.ArtifactError` with a message naming the
file and the regeneration hint, so every consumer fails the same way
instead of each growing its own traceback.  :func:`write_json_artifact`
is the matching atomic writer (REP002's fix hint points here).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import ArtifactError
from repro.resilience.atomic import atomic_write_text

__all__ = ["read_json_artifact", "write_json_artifact"]


def read_json_artifact(
    path: "str | Path",
    *,
    expect_keys: "Sequence[str]" = (),
    regenerate_hint: str = "",
) -> "dict[str, object]":
    """Load ``path`` as a JSON object, failing as :class:`ArtifactError`.

    Every failure mode — missing file, unreadable file, truncated or
    otherwise invalid JSON, a JSON value that is not an object, an
    object missing one of ``expect_keys`` — raises
    :class:`~repro.errors.ArtifactError` naming the file (and, when
    given, ``regenerate_hint`` telling the caller how to rebuild it).
    """
    path = Path(path)
    hint = f"; {regenerate_hint}" if regenerate_hint else ""
    if not path.exists():
        raise ArtifactError(f"artifact {path} not found{hint}")
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ArtifactError(
            f"artifact {path} is unreadable: {exc}{hint}"
        ) from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ArtifactError(
            f"artifact {path} is truncated or not valid JSON "
            f"({exc}){hint}"
        ) from exc
    if not isinstance(payload, dict):
        raise ArtifactError(
            f"artifact {path} holds a JSON "
            f"{type(payload).__name__}, expected an object{hint}"
        )
    missing = [key for key in expect_keys if key not in payload]
    if missing:
        raise ArtifactError(
            f"artifact {path} is missing required key(s) "
            f"{', '.join(missing)} (truncated or wrong file?){hint}"
        )
    return payload


def write_json_artifact(
    path: "str | Path", payload: "Mapping[str, object]", *, indent: int = 2
) -> Path:
    """Atomically write ``payload`` as JSON to ``path``.

    The REP002-sanctioned way to produce a ``.json`` artifact: the file
    appears whole or not at all, so :func:`read_json_artifact`'s
    truncation error is reachable only through genuine disk corruption.
    """
    return atomic_write_text(
        Path(path), json.dumps(dict(payload), indent=indent) + "\n"
    )
