"""Supervised shard execution: tracked futures, deadlines, degradation.

:class:`ShardSupervisor` runs one job's shards on a process pool with
explicit failure semantics, instead of the fire-and-forget ``map`` that
forces a whole-call in-process recompute the moment anything breaks:

* every shard is submitted as its own tracked future, optionally with a
  per-shard deadline;
* a broken pool (a worker *died* — ``BrokenProcessPool``) triggers one
  respawn, after a seeded exponential backoff, and **only unfinished
  shards are re-dispatched** — completed shard results are kept;
* shards still pending past their deadline are *reclaimed*: recounted
  in-process from the clean record, their eventual pool result ignored,
  and the poisoned pool abandoned without waiting on the hung worker;
* when the pool cannot be recovered (respawn budget exhausted, or the
  respawn itself fails), the remaining shards run in-process and a
  ``"degraded"`` event records the fall down the chain;
* shard (mapper) *exceptions* are never retried — they are programming
  errors, not infrastructure failures, and propagate as themselves
  (the contract the sharded engine has honored since it narrowed its
  fallback to pool-death).

Every decision is recorded as a :class:`DegradationEvent` so callers
(the run scope of :class:`~repro.mining.engines.ShardedEngine`, and
through it the miners and the CLI) surface degradation structurally
instead of silently changing execution strategy.

The supervisor is deliberately ignorant of *what* a shard computes and
of fault injection; it talks to the pool owner through a small host
protocol (``submit`` / ``inline`` / ``respawn`` / ``abandon``) and only
reasons about futures, deadlines, and retries.  Exactness is the
host's invariant: ``inline(record)`` must compute exactly what the
pool would have, which every counting-engine mapper satisfies.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import CancelledError, FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, Protocol

__all__ = ["DegradationEvent", "BackoffPolicy", "ShardSupervisor", "PoolHost"]

#: event kinds, in roughly increasing severity
EVENT_KINDS = (
    "pool-respawn",     # pool died; respawned, unfinished shards re-dispatched
    "shard-reclaimed",  # shards past deadline recounted in-process
    "pool-spawn-failed",  # a spawn attempt failed (real or injected)
    "degraded",         # fell down the chain to in-process execution
)


@dataclass(frozen=True)
class DegradationEvent:
    """One structured record of a supervision decision.

    ``shards`` are the input indices affected (empty when the event is
    about the pool rather than specific shards); ``attempt`` counts
    recovery attempts within one job (0 for first-failure events).
    """

    kind: str
    detail: str
    shards: "tuple[int, ...]" = ()
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"event kind must be one of {EVENT_KINDS}, got {self.kind!r}"
            )


class BackoffPolicy:
    """Seeded exponential backoff for pool respawns.

    ``delay(attempt)`` grows as ``base_s * factor**attempt`` capped at
    ``max_s``, with a multiplicative jitter in ``[1, 1+jitter]`` drawn
    from a seeded PRNG — deterministic for a fixed seed, so tests can
    pin the whole recovery timeline (``base_s=0`` sleeps not at all).
    """

    def __init__(
        self,
        base_s: float = 0.05,
        factor: float = 2.0,
        max_s: float = 1.0,
        jitter: float = 0.25,
        seed: int = 2009,
    ) -> None:
        if base_s < 0 or max_s < 0 or factor < 1 or jitter < 0:
            raise ValueError(
                "backoff needs base_s >= 0, max_s >= 0, factor >= 1, "
                "jitter >= 0"
            )
        self.base_s = float(base_s)
        self.factor = float(factor)
        self.max_s = float(max_s)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """The (jittered) delay before recovery ``attempt`` (0-based)."""
        raw = min(self.max_s, self.base_s * self.factor ** max(0, attempt))
        if raw <= 0:
            return 0.0
        return raw * (1.0 + self.jitter * self._rng.random())

    def sleep(self, attempt: int) -> float:
        """Sleep the delay for ``attempt``; returns the slept seconds."""
        d = self.delay(attempt)
        if d > 0:
            time.sleep(d)
        return d


class PoolHost(Protocol):
    """What the supervisor needs from the pool's owner."""

    def submit(self, record: object) -> "object": ...  # -> concurrent Future
    def inline(self, record: object) -> list: ...       # exact in-process compute
    def respawn(self, attempt: int) -> bool: ...  # replace a dead pool
    def abandon(self) -> None: ...              # drop a poisoned pool


class ShardSupervisor:
    """Run one job's shards under supervision (see module docs).

    ``map(records)`` returns the concatenated mapper outputs in input
    order — exactly what an unsupervised map phase would return — no
    matter which failure path was taken to get there.
    """

    def __init__(
        self,
        host: PoolHost,
        deadline_s: "float | None" = None,
        events: "list[DegradationEvent] | None" = None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.host = host
        self.deadline_s = deadline_s
        self.events = events if events is not None else []

    def _record(
        self, kind: str, detail: str, shards: "Iterable[int]" = (),
        attempt: int = 0,
    ) -> None:
        self.events.append(
            DegradationEvent(
                kind=kind, detail=detail,
                shards=tuple(sorted(shards)), attempt=attempt,
            )
        )

    def map(self, records: list) -> list:
        outputs: "list[list | None]" = [None] * len(records)
        unfinished = set(range(len(records)))
        pending: dict = {}    # future -> record index
        deadlines: dict = {}  # future -> absolute monotonic deadline
        attempt = 0
        poisoned = False  # a hang was reclaimed: the pool has a stuck worker

        def dispatch(indices: "Iterable[int]") -> None:
            for i in sorted(indices):
                fut = self.host.submit(records[i])
                pending[fut] = i
                if self.deadline_s is not None:
                    deadlines[fut] = time.monotonic() + self.deadline_s

        def reclaim_inline(
            indices: "Iterable[int]", kind: str, detail: str
        ) -> None:
            self._record(kind, detail, shards=indices, attempt=attempt)
            for i in sorted(indices):
                outputs[i] = self.host.inline(records[i])
                unfinished.discard(i)

        dispatch(unfinished)
        while pending:
            timeout = None
            if deadlines:
                timeout = max(
                    0.0, min(deadlines.values()) - time.monotonic()
                )
            done, _ = wait(
                set(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            broken = False
            for fut in done:
                i = pending.pop(fut)
                deadlines.pop(fut, None)
                try:
                    outputs[i] = fut.result()
                    unfinished.discard(i)
                except (BrokenProcessPool, CancelledError):
                    broken = True
                except BaseException:
                    # a mapper exception: cancel what we can and let it
                    # propagate as itself — never retried (see module docs)
                    for other in pending:
                        other.cancel()
                    raise
            if broken:
                # every future still pending rode the same dead pool
                stale = list(pending)
                for fut in stale:
                    pending.pop(fut)
                    deadlines.pop(fut, None)
                attempt += 1
                if self.host.respawn(attempt):
                    self._record(
                        "pool-respawn",
                        "worker death broke the pool; respawned and "
                        "re-dispatching unfinished shards",
                        shards=unfinished,
                        attempt=attempt,
                    )
                    dispatch(unfinished)
                else:
                    reclaim_inline(
                        set(unfinished),
                        "degraded",
                        "pool unrecoverable; remaining shards recounted "
                        "in-process",
                    )
                continue
            if deadlines:
                now = time.monotonic()
                overdue = {
                    pending[f]
                    for f, t in deadlines.items()
                    if t <= now and not f.done()
                }
                if overdue:
                    # the hung worker poisons its pool slot: recount the
                    # overdue shards in-process (their late results are
                    # ignored — we already dropped the futures); shards
                    # still live on healthy workers keep running, and
                    # the poisoned pool is abandoned — without waiting
                    # on the hang — once the job drains
                    poisoned = True
                    for fut in [f for f, i in pending.items() if i in overdue]:
                        pending.pop(fut)
                        deadlines.pop(fut, None)
                    reclaim_inline(
                        overdue,
                        "shard-reclaimed",
                        f"shards exceeded the {self.deadline_s:g}s "
                        "deadline; reclaimed and recounted in-process",
                    )
        if poisoned:
            self.host.abandon()
        return [kv for out in outputs for kv in (out or [])]
