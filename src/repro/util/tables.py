"""ASCII table and series rendering for the experiment harness.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting in one place (no
plotting dependency is available offline, so figures are rendered as
aligned numeric series plus ASCII sparklines).
"""

from __future__ import annotations

from typing import Iterable, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width ASCII table.

    Floats are formatted with ``float_fmt``; everything else via ``str``.
    """
    str_rows = []
    for row in rows:
        str_rows.append(
            [float_fmt.format(v) if isinstance(v, float) else str(v) for v in row]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a unicode sparkline (min→max scaled)."""
    vals = list(values)
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    y_fmt: str = "{:.3f}",
    with_spark: bool = True,
) -> str:
    """Render one figure series: name, sparkline, then x→y pairs."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    parts = [f"{name}:"]
    if with_spark and ys:
        parts.append(f"  shape {sparkline(list(ys))}")
    pair_strs = [f"{x}={y_fmt.format(y)}" for x, y in zip(xs, ys)]
    # wrap pairs at ~100 chars per line for terminal readability
    line: list[str] = []
    used = 4
    for p in pair_strs:
        if used + len(p) + 2 > 100 and line:
            parts.append("    " + "  ".join(line))
            line, used = [], 4
        line.append(p)
        used += len(p) + 2
    if line:
        parts.append("    " + "  ".join(line))
    return "\n".join(parts)
