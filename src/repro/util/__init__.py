"""Shared utilities: unit conversions, RNG plumbing, ASCII rendering."""

from repro.util.units import (
    KIB,
    MIB,
    GIB,
    cycles_to_ms,
    cycles_to_seconds,
    ghz,
    mhz_to_hz,
    ms_to_cycles,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import format_table, format_series
from repro.util.validation import (
    require,
    require_positive,
    require_in_range,
    require_power_of_two,
)

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "cycles_to_ms",
    "cycles_to_seconds",
    "ghz",
    "mhz_to_hz",
    "ms_to_cycles",
    "make_rng",
    "spawn_rngs",
    "format_table",
    "format_series",
    "require",
    "require_positive",
    "require_in_range",
    "require_power_of_two",
]
