"""Small validation helpers shared by configuration dataclasses."""

from __future__ import annotations

from typing import TypeVar

from repro.errors import ConfigError

T = TypeVar("T", int, float)


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigError(message)


def require_positive(value: T, name: str) -> T:
    """Return ``value`` if strictly positive, else raise."""
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value}")
    return value


def require_in_range(value: T, lo: T, hi: T, name: str) -> T:
    """Return ``value`` if ``lo <= value <= hi``, else raise."""
    if not (lo <= value <= hi):
        raise ConfigError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def require_power_of_two(value: int, name: str) -> int:
    """Return ``value`` if it is a power of two, else raise."""
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{name} must be a power of two, got {value}")
    return value
