"""Seeded random-number plumbing.

All stochastic components (workload generators, planted-pattern
injection) take an explicit ``numpy.random.Generator`` or a seed, so
every experiment in the harness is exactly reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``Generator`` from a seed, pass one through, or default-seed.

    ``None`` maps to a fixed default seed (not entropy) because the
    library's contract is determinism-by-default; callers wanting
    entropy pass ``np.random.default_rng()`` themselves.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0xC0DA  # deterministic default; CUDA pun intended
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses ``SeedSequence.spawn`` semantics via ``Generator.spawn`` so the
    children are statistically independent regardless of how many are
    drawn from each.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return make_rng(seed).spawn(n)
