"""Unit conversions used throughout the GPU model.

The timing model works internally in *shader cycles* (the unit the CUDA
programming guide quotes instruction costs in — e.g. "a single
instruction is completed by the entire warp in 4 cycles", paper §2.1.1)
and converts to milliseconds only at reporting boundaries, using each
card's shader clock.
"""

from __future__ import annotations

from repro.errors import ConfigError

KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024


def mhz_to_hz(mhz: float) -> float:
    """Convert a clock in MHz to Hz."""
    if mhz <= 0:
        raise ConfigError(f"clock must be positive, got {mhz} MHz")
    return mhz * 1e6


def ghz(mhz: float) -> float:
    """Convert a clock in MHz to GHz (convenience for reporting)."""
    return mhz / 1e3


def cycles_to_seconds(cycles: float, clock_mhz: float) -> float:
    """Convert a shader-cycle count to wall seconds at ``clock_mhz``."""
    return cycles / mhz_to_hz(clock_mhz)


def cycles_to_ms(cycles: float, clock_mhz: float) -> float:
    """Convert a shader-cycle count to milliseconds at ``clock_mhz``."""
    return cycles_to_seconds(cycles, clock_mhz) * 1e3


def ms_to_cycles(ms: float, clock_mhz: float) -> float:
    """Convert milliseconds back to shader cycles at ``clock_mhz``."""
    if ms < 0:
        raise ConfigError(f"time must be non-negative, got {ms} ms")
    return ms * 1e-3 * mhz_to_hz(clock_mhz)


def gbps_to_bytes_per_cycle(gbps: float, clock_mhz: float) -> float:
    """Convert device-memory bandwidth (GB/s) to bytes per shader cycle.

    Expressing bandwidth in bytes/cycle lets the analytic model compare
    the bandwidth bound directly against issue/latency bounds which are
    naturally in cycles.
    """
    if gbps <= 0:
        raise ConfigError(f"bandwidth must be positive, got {gbps} GB/s")
    return gbps * 1e9 / mhz_to_hz(clock_mhz)
