"""repro — reproduction of *Multi-Dimensional Characterization of
Temporal Data Mining on Graphics Processors* (Archuleta, Cao, Feng,
Scogland; IPPS 2009).

The library provides:

* a CUDA-like SIMT GPU substrate (:mod:`repro.gpu`) modeling the three
  cards of the paper's Table 2;
* frequent episode mining (:mod:`repro.mining`) — the paper's temporal
  data-mining workload, with candidate generation, FSM counting under
  three matching policies, and boundary-span correction;
* the four GPU algorithms and the adaptive selector (:mod:`repro.algos`);
* a MapReduce framework the algorithms are expressed in
  (:mod:`repro.mapreduce`);
* workload generators (:mod:`repro.data`) and the experiment harness
  reproducing every table and figure (:mod:`repro.experiments`);
* streaming episode mining (:mod:`repro.streaming`) — incremental,
  exactly batch-equivalent counting over chunk-at-a-time event feeds.

Quickstart::

    from repro import (
        GpuSimulator, get_card, MiningProblem, ThreadTexKernel,
        paper_database, generate_level, UPPERCASE,
    )

    db = paper_database()
    episodes = generate_level(UPPERCASE, 2)
    problem = MiningProblem(db, tuple(episodes), UPPERCASE.size)
    kernel = ThreadTexKernel(problem, threads_per_block=128)
    result = GpuSimulator(get_card("GTX280")).launch(kernel)
    print(result.report.total_ms, result.output[:5])
"""

from repro.errors import (
    ConfigError,
    DeviceMemoryError,
    ExperimentError,
    LaunchError,
    MiningError,
    ReproError,
    ValidationError,
)
from repro.gpu import (
    CARD_REGISTRY,
    DeviceSpecs,
    Dim3,
    GpuSimulator,
    LaunchConfig,
    OccupancyCalculator,
    TimingReport,
    get_card,
    list_cards,
)
from repro.mining import (
    Alphabet,
    CandidateTrie,
    CountCache,
    DatabaseIndex,
    Episode,
    FrequentEpisodeMiner,
    GpuSimEngine,
    MatchPolicy,
    MiningResult,
    SerialMiner,
    ShardedEngine,
    UPPERCASE,
    cached_count_batch,
    count_batch,
    count_candidates,
    count_episode,
    count_segmented,
    generate_level,
    generate_next_level,
    get_engine,
    list_engines,
    register_engine,
)
from repro.algos import (
    AdaptiveSelector,
    BlockBufKernel,
    BlockTexKernel,
    MiningProblem,
    ThreadBufKernel,
    ThreadTexKernel,
    get_algorithm,
)
from repro.data import (
    PAPER_DB_LENGTH,
    generate_market_stream,
    generate_spike_stream,
    paper_database,
    random_database,
)
from repro.mapreduce import GpuCountingEngine
from repro.gpu.multi import MultiGpu, dual_gx2
from repro.mining.pipeline import PipelinedMiner
from repro.streaming import (
    ArrayStreamSource,
    FileStreamSource,
    StreamingMiner,
    StreamUpdate,
    SyntheticStreamSource,
    as_stream_source,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigError",
    "LaunchError",
    "DeviceMemoryError",
    "ValidationError",
    "ExperimentError",
    "MiningError",
    # gpu
    "DeviceSpecs",
    "Dim3",
    "LaunchConfig",
    "GpuSimulator",
    "OccupancyCalculator",
    "TimingReport",
    "CARD_REGISTRY",
    "get_card",
    "list_cards",
    # mining
    "Alphabet",
    "UPPERCASE",
    "Episode",
    "MatchPolicy",
    "CandidateTrie",
    "CountCache",
    "cached_count_batch",
    "count_batch",
    "count_episode",
    "count_candidates",
    "count_segmented",
    "generate_level",
    "generate_next_level",
    "DatabaseIndex",
    "ShardedEngine",
    "get_engine",
    "list_engines",
    "register_engine",
    "FrequentEpisodeMiner",
    "MiningResult",
    "SerialMiner",
    # algos
    "MiningProblem",
    "ThreadTexKernel",
    "ThreadBufKernel",
    "BlockTexKernel",
    "BlockBufKernel",
    "AdaptiveSelector",
    "get_algorithm",
    # data
    "paper_database",
    "random_database",
    "PAPER_DB_LENGTH",
    "generate_spike_stream",
    "generate_market_stream",
    # mapreduce
    "GpuCountingEngine",
    "GpuSimEngine",
    # extensions
    "MultiGpu",
    "dual_gx2",
    "PipelinedMiner",
    # streaming
    "StreamingMiner",
    "StreamUpdate",
    "ArrayStreamSource",
    "FileStreamSource",
    "SyntheticStreamSource",
    "as_stream_source",
    "__version__",
]
