"""GPU-backed counting engine.

Bridges the mining driver's :class:`~repro.mining.miner.CountingEngine`
protocol onto a simulated-GPU algorithm: each counting step becomes one
kernel launch on the device, and the engine records the accumulated
simulated kernel time so end-to-end mining examples can report the
GPU-side cost the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.gpu.report import TimingReport
from repro.gpu.simulator import GpuSimulator
from repro.gpu.specs import DeviceSpecs
from repro.mining.episode import Episode
from repro.mining.policies import MatchPolicy
from repro.algos.base import MiningProblem
from repro.algos.registry import get_algorithm
from repro.algos.selector import AdaptiveSelector


@dataclass
class GpuCountingEngine:
    """Counting engine that launches mining kernels on a simulated card.

    ``algorithm`` of ``"auto"`` consults the :class:`AdaptiveSelector`
    per counting step — the paper's dynamic-adaptation conclusion.
    """

    device: DeviceSpecs
    alphabet_size: int
    algorithm: "int | str" = "auto"
    threads_per_block: int = 128
    policy: MatchPolicy = MatchPolicy.RESET
    window: int | None = None
    reports: list[TimingReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._sim = GpuSimulator(self.device)
        self._selector = (
            AdaptiveSelector(self.device) if self.algorithm == "auto" else None
        )
        if self.algorithm != "auto":
            get_algorithm(self.algorithm)  # validate eagerly
        if self.threads_per_block < 1:
            raise ConfigError("threads_per_block must be >= 1")

    def __call__(self, db: np.ndarray, episodes: list[Episode]) -> np.ndarray:
        problem = MiningProblem(
            db=np.asarray(db, dtype=np.uint8),
            episodes=tuple(episodes),
            alphabet_size=self.alphabet_size,
            policy=self.policy,
            window=self.window,
        )
        if self._selector is not None:
            choice = self._selector.select(problem)
            cls = get_algorithm(choice.algorithm_id)
            kernel = cls(problem, threads_per_block=choice.threads_per_block)
        else:
            cls = get_algorithm(self.algorithm)
            kernel = cls(problem, threads_per_block=self.threads_per_block)
        result = self._sim.launch(kernel)
        self.reports.append(result.report)
        return result.output

    @property
    def total_kernel_ms(self) -> float:
        """Accumulated simulated kernel time across counting steps."""
        return sum(r.total_ms for r in self.reports)
