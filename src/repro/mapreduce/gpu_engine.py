"""GPU-backed counting engine.

Bridges the mining driver's :class:`~repro.mining.miner.CountingEngine`
protocol onto the simulated-GPU registry engine
(:class:`~repro.mining.engines.GpuSimEngine`, name ``"gpu-sim"``): each
counting step becomes one kernel launch on the device, and the engine
records the accumulated simulated kernel time so end-to-end mining
examples can report the GPU-side cost the paper measures.

This class predates the engine registry and is kept as the bound-
protocol adapter (policy and window are fixed at construction); the
kernel selection, database validation, and launch bookkeeping all live
in the shared :class:`GpuSimEngine` code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.gpu.report import TimingReport
from repro.gpu.specs import DeviceSpecs
from repro.mining.episode import Episode
from repro.mining.policies import MatchPolicy, validate_window


@dataclass
class GpuCountingEngine:
    """Counting engine that launches mining kernels on a simulated card.

    ``algorithm`` of ``"auto"`` consults the memoizing
    :class:`~repro.algos.selector.AdaptiveSelector` — the paper's
    dynamic-adaptation conclusion — paying one configuration sweep per
    problem shape, not per counting step.
    """

    device: DeviceSpecs
    alphabet_size: int
    algorithm: "int | str" = "auto"
    threads_per_block: int = 128
    policy: MatchPolicy = MatchPolicy.RESET
    window: int | None = None
    reports: list[TimingReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        # lazy: repro.mining.engines imports repro.mapreduce.types, so a
        # top-level import here would cycle through the package __init__
        from repro.mining.engines import GpuSimEngine

        validate_window(self.policy, self.window)
        if self.alphabet_size < 1 or self.alphabet_size > 256:
            raise ValidationError(
                f"alphabet_size must be in [1, 256] for the uint8 device "
                f"kernels, got {self.alphabet_size}"
            )
        self._impl = GpuSimEngine(
            device=self.device,
            algorithm=self.algorithm,
            threads_per_block=self.threads_per_block,
        )
        # share the accumulator so callers holding ``reports`` see every
        # launch made through the registry engine
        self._impl.reports = self.reports

    def __call__(self, db: np.ndarray, episodes: list[Episode]) -> np.ndarray:
        return self._impl.count(
            db, episodes, self.alphabet_size, self.policy, self.window
        )

    @property
    def total_kernel_ms(self) -> float:
        """Accumulated simulated kernel time across counting steps."""
        return sum(r.total_ms for r in self.reports)
