"""Engine protocol and the generic job runner."""

from __future__ import annotations

import abc
from typing import Hashable, TypeVar

from repro.mapreduce.combiner import group_by_key
from repro.mapreduce.types import KeyValue, MapReduceJob

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
K2 = TypeVar("K2", bound=Hashable)
V2 = TypeVar("V2")
R = TypeVar("R")


class MapReduceEngine(abc.ABC):
    """Executes MapReduce jobs; subclasses choose the parallelism.

    Engines are reusable, re-entrant context managers: ``with engine:``
    brackets one *run* of related jobs, letting pooled engines acquire
    their workers once and amortize them across every ``run`` inside
    the scope (the process-pool engine does exactly that).  The base
    lifecycle is a no-op, so stateless engines cost nothing, and
    ``run`` outside any scope keeps its one-shot behaviour.
    """

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    @abc.abstractmethod
    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        """Run the mapper over every input, concatenating outputs."""

    def run(self, job: MapReduceJob[K, V, K2, V2, R]) -> dict[K2, R]:
        """map -> (intermediate) -> shuffle -> reduce."""
        intermediate = self.map_phase(job)
        if job.intermediate is not None:
            intermediate = job.intermediate(intermediate)
        groups = group_by_key(intermediate)
        return {k: job.reducer(k, vs) for k, vs in groups.items()}


def run_job(
    job: MapReduceJob[K, V, K2, V2, R], engine: "MapReduceEngine | None" = None
) -> dict[K2, R]:
    """Run a job on the given engine (default: serial CPU)."""
    if engine is None:
        from repro.mapreduce.cpu_engine import SerialEngine

        engine = SerialEngine()
    return engine.run(job)
