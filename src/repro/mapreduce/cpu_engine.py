"""CPU MapReduce engines: serial, thread-pool, and process-pool.

The serial engine is the Hadoop-on-one-core stand-in (the paper's
GMiner context); the thread-pool engine demonstrates the framework's
task parallelism on the host; the process-pool engine provides real
multi-core parallelism for CPU-bound mappers (the sharded counting
engine in :mod:`repro.mining.engines` runs on it).  All produce
identical outputs — an invariant the tests assert.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Hashable, TypeVar

from repro.errors import ConfigError
from repro.mapreduce.framework import MapReduceEngine
from repro.mapreduce.types import KeyValue, MapReduceJob

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
K2 = TypeVar("K2", bound=Hashable)
V2 = TypeVar("V2")
R = TypeVar("R")


class SerialEngine(MapReduceEngine):
    """One worker, in input order."""

    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        out: list[KeyValue[K2, V2]] = []
        for record in job.inputs:
            out.extend(job.mapper(record))
        return out


class ThreadPoolEngine(MapReduceEngine):
    """Host-side task parallelism over the map inputs.

    Output ordering matches input ordering regardless of completion
    order, keeping results deterministic.
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            chunks = pool.map(lambda rec: list(job.mapper(rec)), job.inputs)
            out: list[KeyValue[K2, V2]] = []
            for chunk in chunks:
                out.extend(chunk)
            return out


def _run_mapper(mapper, record):
    """Apply a mapper to one record (module-level: process pools pickle it)."""
    return list(mapper(record))


class ProcessPoolEngine(MapReduceEngine):
    """Multi-core task parallelism over the map inputs.

    Both the mapper and every input record must be picklable (the
    mapper a module-level function, not a closure).  Output ordering
    matches input ordering, keeping results deterministic.  Prefers the
    ``fork`` start method (inherits NumPy state cheaply), falling back
    to the platform default where ``fork`` is unavailable.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else min(os.cpu_count() or 1, 8)

    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        inputs = list(job.inputs)
        # batch records per dispatch: one mapper pickle + IPC round-trip
        # per chunk, not per record
        chunksize = max(1, len(inputs) // (self.workers * 4))
        with ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx) as pool:
            out: list[KeyValue[K2, V2]] = []
            mapped = pool.map(
                partial(_run_mapper, job.mapper), inputs, chunksize=chunksize
            )
            for chunk in mapped:
                out.extend(chunk)
            return out
