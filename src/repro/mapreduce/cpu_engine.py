"""CPU MapReduce engines: serial, thread-pool, and process-pool.

The serial engine is the Hadoop-on-one-core stand-in (the paper's
GMiner context); the thread-pool engine demonstrates the framework's
task parallelism on the host; the process-pool engine provides real
multi-core parallelism for CPU-bound mappers (the sharded counting
engine in :mod:`repro.mining.engines` runs on it).  All produce
identical outputs — an invariant the tests assert.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Hashable, TypeVar

from repro.errors import ConfigError
from repro.mapreduce.framework import MapReduceEngine
from repro.mapreduce.types import KeyValue, MapReduceJob

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
K2 = TypeVar("K2", bound=Hashable)
V2 = TypeVar("V2")
R = TypeVar("R")


class SerialEngine(MapReduceEngine):
    """One worker, in input order."""

    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        out: list[KeyValue[K2, V2]] = []
        for record in job.inputs:
            out.extend(job.mapper(record))
        return out


class ThreadPoolEngine(MapReduceEngine):
    """Host-side task parallelism over the map inputs.

    Output ordering matches input ordering regardless of completion
    order, keeping results deterministic.
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            chunks = pool.map(lambda rec: list(job.mapper(rec)), job.inputs)
            out: list[KeyValue[K2, V2]] = []
            for chunk in chunks:
                out.extend(chunk)
            return out


def _run_mapper(mapper, record):
    """Apply a mapper to one record (module-level: process pools pickle it)."""
    return list(mapper(record))


def _probe_worker() -> int:
    """No-op task forcing worker spawn (module-level: pools pickle it)."""
    return 0


class ProcessPoolEngine(MapReduceEngine):
    """Multi-core task parallelism over the map inputs.

    Both the mapper and every input record must be picklable (the
    mapper a module-level function, not a closure).  Output ordering
    matches input ordering, keeping results deterministic.  Prefers the
    ``fork`` start method (inherits NumPy state cheaply), falling back
    to the platform default where ``fork`` is unavailable.

    ``with engine:`` acquires one :class:`ProcessPoolExecutor` for the
    whole scope, so every ``run`` inside shares it — worker processes
    (and whatever state their mappers cache) persist across jobs.  The
    entry *probes* the pool with a no-op task, forcing worker spawn
    eagerly: platforms that cannot spawn processes fail right there
    (``OSError`` / ``BrokenProcessPool``) instead of poisoning the
    first real job — which is what lets callers distinguish "no pool
    available" from a mapper bug.  Outside a scope, ``run`` keeps the
    historical one-shot behaviour (a fresh pool per job).
    ``pools_spawned`` counts executor creations for lifecycle tests and
    the ``sharded_scaling`` benchmark series.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else min(os.cpu_count() or 1, 8)
        self.pools_spawned = 0
        self._executor: ProcessPoolExecutor | None = None
        self._depth = 0

    @staticmethod
    def _mp_context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    def _spawn(self) -> ProcessPoolExecutor:
        """Create and probe an executor; raises where pools cannot spawn."""
        executor = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._mp_context()
        )
        try:
            executor.submit(_probe_worker).result()
        except BaseException:
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        self.pools_spawned += 1
        return executor

    @property
    def pool_active(self) -> bool:
        """True inside a ``with`` scope holding a live executor."""
        return self._executor is not None

    def submit(self, mapper, record):
        """Submit one record's map as a tracked future.

        Requires an active scope executor (``with engine:``); the
        supervised sharding path (:mod:`repro.resilience.supervisor`)
        dispatches through here so each shard can carry its own
        deadline and be individually re-dispatched after a pool death.
        The future resolves to ``list(mapper(record))``.
        """
        if self._executor is None:
            raise ConfigError(
                "submit requires an entered engine scope (with engine:)"
            )
        return self._executor.submit(_run_mapper, mapper, record)

    def abandon(self) -> None:
        """Drop the scope executor without waiting on its workers.

        The escape hatch for a pool known to be poisoned (a hung or
        dead worker): pending futures are cancelled, nothing is joined,
        and the scope's eventual ``__exit__`` becomes a no-op.  Workers
        still executing finish (or die) on their own; their results are
        never observed.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ProcessPoolEngine":
        if self._depth == 0:
            self._executor = self._spawn()
        self._depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._depth -= 1
        if self._depth == 0 and self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        return False

    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        if self._executor is not None:
            return self._map_on(self._executor, job)
        executor = self._spawn()
        try:
            return self._map_on(executor, job)
        finally:
            executor.shutdown()

    def _map_on(
        self, executor: ProcessPoolExecutor, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        inputs = list(job.inputs)
        # batch records per dispatch: one mapper pickle + IPC round-trip
        # per chunk, not per record
        chunksize = max(1, len(inputs) // (self.workers * 4))
        out: list[KeyValue[K2, V2]] = []
        mapped = executor.map(
            partial(_run_mapper, job.mapper), inputs, chunksize=chunksize
        )
        for chunk in mapped:
            out.extend(chunk)
        return out
