"""CPU MapReduce engines: serial and thread-pool.

The serial engine is the Hadoop-on-one-core stand-in (the paper's
GMiner context); the thread-pool engine demonstrates the framework's
task parallelism on the host.  Both produce identical outputs — an
invariant the tests assert.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, TypeVar

from repro.errors import ConfigError
from repro.mapreduce.framework import MapReduceEngine
from repro.mapreduce.types import KeyValue, MapReduceJob

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
K2 = TypeVar("K2", bound=Hashable)
V2 = TypeVar("V2")
R = TypeVar("R")


class SerialEngine(MapReduceEngine):
    """One worker, in input order."""

    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        out: list[KeyValue[K2, V2]] = []
        for record in job.inputs:
            out.extend(job.mapper(record))
        return out


class ThreadPoolEngine(MapReduceEngine):
    """Host-side task parallelism over the map inputs.

    Output ordering matches input ordering regardless of completion
    order, keeping results deterministic.
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map_phase(
        self, job: MapReduceJob[K, V, K2, V2, R]
    ) -> list[KeyValue[K2, V2]]:
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            chunks = pool.map(lambda rec: list(job.mapper(rec)), job.inputs)
            out: list[KeyValue[K2, V2]] = []
            for chunk in chunks:
                out.extend(chunk)
            return out
