"""MapReduce framework (paper §2.2).

The paper frames all four mining algorithms as MapReduce programs:
*map* emits (episode, partial-count) pairs, an optional intermediate
step repairs boundary-spanning occurrences, *reduce* sums partials per
episode.  This package provides the general framework (usable for any
key/value job), CPU engines (serial, thread-pool, and process-pool),
and the GPU engine that lowers counting jobs onto the simulated mining
kernels.
"""

from repro.mapreduce.types import KeyValue, MapReduceJob
from repro.mapreduce.framework import MapReduceEngine, run_job
from repro.mapreduce.cpu_engine import (
    ProcessPoolEngine,
    SerialEngine,
    ThreadPoolEngine,
)
from repro.mapreduce.gpu_engine import GpuCountingEngine
from repro.mapreduce.combiner import sum_combiner, group_by_key

__all__ = [
    "KeyValue",
    "MapReduceJob",
    "MapReduceEngine",
    "run_job",
    "SerialEngine",
    "ThreadPoolEngine",
    "ProcessPoolEngine",
    "GpuCountingEngine",
    "sum_combiner",
    "group_by_key",
]
