"""MapReduce job types.

The general algorithm (paper §2.2): ``map`` turns input key/value pairs
into intermediate key/value pairs; ``reduce`` folds all values sharing
an intermediate key into outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
K2 = TypeVar("K2", bound=Hashable)
V2 = TypeVar("V2")
R = TypeVar("R")


@dataclass(frozen=True)
class KeyValue(Generic[K, V]):
    """One key/value record."""

    key: K
    value: V


@dataclass(frozen=True)
class MapReduceJob(Generic[K, V, K2, V2, R]):
    """A map function, a reduce function, and the inputs.

    ``mapper`` receives one input record and yields intermediate
    records; ``reducer`` receives an intermediate key and all its values
    and returns the output value for that key.  ``intermediate`` is the
    paper's optional step between map and reduce (the span fix of
    Fig. 5): it may rewrite the full intermediate record list.
    """

    inputs: Sequence[KeyValue[K, V]]
    mapper: Callable[[KeyValue[K, V]], Iterable[KeyValue[K2, V2]]]
    reducer: Callable[[K2, list[V2]], R]
    intermediate: Callable[[list[KeyValue[K2, V2]]], list[KeyValue[K2, V2]]] | None = None

    def __post_init__(self) -> None:
        if not callable(self.mapper) or not callable(self.reducer):
            raise ConfigError("mapper and reducer must be callable")
