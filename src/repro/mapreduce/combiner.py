"""Shuffle helpers: grouping and combining intermediate records."""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable, TypeVar

from repro.mapreduce.types import KeyValue

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def group_by_key(records: Iterable[KeyValue[K, V]]) -> dict[K, list[V]]:
    """The shuffle: collect every value under its intermediate key.

    Insertion order of keys is preserved (first occurrence), so engine
    outputs are deterministic.
    """
    groups: dict[K, list[V]] = defaultdict(list)
    for rec in records:
        groups[rec.key].append(rec.value)
    return dict(groups)


def sum_combiner(records: Iterable[KeyValue[K, float]]) -> list[KeyValue[K, float]]:
    """Map-side combiner for additive values: one record per key.

    Cuts intermediate volume before the shuffle — the standard
    optimization for counting jobs like episode mining.
    """
    groups = group_by_key(records)
    return [KeyValue(k, sum(vs)) for k, vs in groups.items()]
