"""Algorithm 3 — block-level parallelism, texture memory (paper §3.3.3).

One block searches for one episode; the block's threads partition the
database into contiguous segments, each scanned through texture memory
from a different offset.  Because an occurrence may span two segments,
an intermediate fix-up pass runs between map and reduce (paper Fig. 5);
the reduce then folds per-thread partial counts through global atomics
into the episode's total.

Performance signature (Characterizations 3/5/8): per-lane streams make
the texture-cache working set ``resident threads x line``, so high
thread counts thrash the 8 KB cache and expose raw memory bandwidth —
the dimension where the GTX 280's 141.7 GB/s dominates Fig. 8(b) —
while the atomic-based reduce grows linearly with the thread count.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.launch import LaunchConfig
from repro.gpu.memory import DeviceMemory
from repro.gpu.specs import DeviceSpecs
from repro.gpu.trace import KernelTrace, Pattern, Phase, Space
from repro.mining.spanning import count_segmented
from repro.algos.base import MiningKernel


class BlockTexKernel(MiningKernel):
    """Paper Algorithm 3: one block per episode, unbuffered."""

    name = "algo3-block-tex"
    algorithm_id = 3
    block_level = True
    buffered = False

    def execute(self, memory: DeviceMemory, config: LaunchConfig) -> np.ndarray:
        p = self.problem
        db = memory.texture_mem.get(f"{self.name}/db")
        memory.texture_mem.counters.reads += p.n * config.total_blocks
        seg = count_segmented(
            db,
            p.matrix,
            p.alphabet_size,
            n_segments=config.threads_per_block,
            policy=p.policy,
            fix_spanning=True,
        )
        return seg.totals

    def build_trace(self, device: DeviceSpecs, config: LaunchConfig) -> KernelTrace:
        card = self._card(device)
        t = config.threads_per_block
        level = self.problem.level
        chars_per_thread = self.problem.n / t + max(0, level - 1)
        scan = Phase(
            name="scan",
            elements_per_thread=chars_per_thread,
            instructions_per_element=self.costs.fsm_instructions_tex,
            chain_cycles_per_element=card.tex_divergent_chain_hit,
            space=Space.TEXTURE,
            pattern=Pattern.STREAMED,
            bytes_per_element=1.0,
        )
        span = Phase(
            name="span-fix",
            serial_elements=float(t * max(0, level - 1)),
            serial_cycles_per_element=self.costs.stitch_cycles_per_char,
            fixed_cycles_per_repeat=self.costs.barrier_cycles,
        )
        reduce = Phase(
            name="reduce",
            serial_elements=float(max(1, math.ceil(math.log2(max(2, t))))),
            serial_cycles_per_element=self.costs.reduce_step_cycles,
            atomics=float(t),  # per-thread partials staged via global atomics
        )
        return KernelTrace(
            kernel_name=self.name,
            phases=(scan, span, reduce),
            notes="map=segment scans; intermediate=boundary fix; reduce=atomic sum",
        )
