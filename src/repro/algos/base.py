"""Common machinery for the four mining kernels.

A :class:`MiningProblem` bundles the database, the candidate episode
batch, and the matching policy; a :class:`MiningKernel` binds a problem
to a thread count and implements the :class:`~repro.gpu.kernel.Kernel`
protocol: launch plan, functional execution against device memory, and
a timing trace.

The functional execution path is the MapReduce pipeline of §3.3.1: the
*map* emits per-unit occurrence counts (per episode for thread-level,
per thread-segment for block-level), an intermediate *span fix* handles
episodes crossing segment boundaries (block-level only, Fig. 5), and
the *reduce* sums — an identity for thread-level parallelism.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.errors import MiningError, ValidationError
from repro.gpu.calibration import (
    AlgoCostParams,
    BUFFER_BYTES,
    DEFAULT_ALGO_COSTS,
    timing_params_for,
)
from repro.gpu.kernel import Kernel
from repro.gpu.launch import Dim3, LaunchConfig
from repro.gpu.memory import DeviceMemory
from repro.gpu.specs import DeviceSpecs
from repro.mining.episode import Episode, episodes_to_matrix
from repro.mining.policies import MatchPolicy, validate_window


def coerce_database(db: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Validate and stage a database for the uint8 device kernels.

    The simulated kernels hold the database in 1-byte device buffers, so
    a symbol that does not fit uint8 cannot be staged — it must be
    rejected, never wrapped modulo 256 (which silently produces wrong
    counts).  Codes at or beyond ``alphabet_size`` are rejected for the
    same reason: the RESET n-gram encoding is positional base-N, so an
    out-of-alphabet code would alias a valid gram.
    """
    if alphabet_size < 1:
        raise ValidationError(f"alphabet_size must be >= 1, got {alphabet_size}")
    if alphabet_size > 256:
        raise ValidationError(
            f"simulated kernels stage the database as uint8; alphabet_size "
            f"{alphabet_size} exceeds the 256 representable symbols"
        )
    db = np.asarray(db)
    if db.ndim != 1:
        raise ValidationError(f"database must be 1-D, got shape {db.shape}")
    if not np.issubdtype(db.dtype, np.integer):
        raise ValidationError(
            f"database must be integer-coded, got dtype {db.dtype}"
        )
    if db.size:
        lo, hi = int(db.min()), int(db.max())
        if lo < 0 or hi >= alphabet_size:
            raise ValidationError(
                f"database codes span [{lo}, {hi}], outside the alphabet "
                f"[0, {alphabet_size}); refusing to truncate to uint8"
            )
    return db if db.dtype == np.uint8 else db.astype(np.uint8)


def _coerce_matrix(matrix: np.ndarray) -> np.ndarray:
    """Validate a raw (E, L) episode matrix for the uint8 kernels."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or 0 in matrix.shape:
        raise ValidationError(
            f"episode matrix must be 2-D and non-empty, got shape {matrix.shape}"
        )
    if not np.issubdtype(matrix.dtype, np.integer):
        raise ValidationError(
            f"episode matrix must be integer-coded, got dtype {matrix.dtype}"
        )
    lo, hi = int(matrix.min()), int(matrix.max())
    if lo < 0 or hi > 255:
        raise ValidationError(
            f"episode codes span [{lo}, {hi}]; must fit uint8"
        )
    return matrix if matrix.dtype == np.uint8 else matrix.astype(np.uint8)


@dataclass(frozen=True)
class MiningProblem:
    """One counting step: database x same-length episode batch.

    ``episodes`` is either a tuple of :class:`Episode` objects or a raw
    ``(E, L)`` uint8 matrix — the matrix form admits repeated symbols
    within a row, which the distinct-item :class:`Episode` type cannot
    express but the counting kernels handle exactly.
    """

    db: np.ndarray
    episodes: "tuple[Episode, ...] | np.ndarray"
    alphabet_size: int
    policy: MatchPolicy = MatchPolicy.RESET
    window: int | None = None

    def __post_init__(self) -> None:
        db = np.asarray(self.db)
        if db.ndim != 1 or db.dtype != np.uint8:
            raise ValidationError("database must be a 1-D uint8 array")
        validate_window(self.policy, self.window)
        if isinstance(self.episodes, np.ndarray):
            object.__setattr__(self, "episodes", _coerce_matrix(self.episodes))
        else:
            if not self.episodes:
                raise ValidationError("problem needs at least one episode")
            object.__setattr__(self, "episodes", tuple(self.episodes))
        object.__setattr__(self, "db", db)

    @cached_property
    def matrix(self) -> np.ndarray:
        if isinstance(self.episodes, np.ndarray):
            return self.episodes
        return episodes_to_matrix(list(self.episodes))

    @property
    def n(self) -> int:
        return int(self.db.size)

    @property
    def n_episodes(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def level(self) -> int:
        return int(self.matrix.shape[1])


class MiningKernel(Kernel, abc.ABC):
    """Base class for the four algorithms."""

    #: paper's algorithm number (1-4)
    algorithm_id: int = 0
    #: True for block-level parallelism (one block per episode)
    block_level: bool = False
    #: True when the database is staged through shared memory
    buffered: bool = False

    def __init__(
        self,
        problem: MiningProblem,
        threads_per_block: int,
        costs: AlgoCostParams | None = None,
        buffer_bytes: int = BUFFER_BYTES,
    ) -> None:
        if threads_per_block < 1:
            raise ValidationError(
                f"threads_per_block must be >= 1, got {threads_per_block}"
            )
        self.problem = problem
        self.threads_per_block = threads_per_block
        self.costs = costs or DEFAULT_ALGO_COSTS
        self.buffer_bytes = buffer_bytes
        if self.block_level and problem.policy is not MatchPolicy.RESET:
            raise MiningError(
                f"{self.name}: block-level kernels require the RESET policy "
                "(segment decomposition with span fix-up is exact only for "
                "contiguous matching; see repro.mining.spanning)"
            )

    # -- launch ---------------------------------------------------------
    @property
    def grid_blocks(self) -> int:
        if self.block_level:
            return self.problem.n_episodes
        return -(-self.problem.n_episodes // self.threads_per_block)

    def launch_config(self, device: DeviceSpecs) -> LaunchConfig:
        blocks = self.grid_blocks
        # CUDA grids are limited to 65535 per axis; fold overflow into y.
        gx = min(blocks, 65535)
        gy = -(-blocks // gx)
        return LaunchConfig(
            grid=Dim3(gx, gy),
            block=Dim3(self.threads_per_block),
            shared_mem_bytes=self.buffer_bytes if self.buffered else 0,
            registers_per_thread=self.costs.registers_per_thread,
        )

    # -- functional plumbing ---------------------------------------------
    def upload(self, memory: DeviceMemory) -> None:
        """Stage the database and episode batch, replacing stale buffers.

        Re-launching on the same simulator with a new problem (the
        level-wise miner does this every level) must not read stale
        device buffers, so staging is content-checked, not just
        key-checked.
        """
        space = memory.texture_mem if not self.buffered else memory.global_mem
        self._stage(space, f"{self.name}/db", self.problem.db)
        matrix = self.problem.matrix
        if matrix.nbytes <= memory.constant_mem.capacity_bytes:
            self._stage(memory.constant_mem, f"{self.name}/episodes", matrix)
        else:
            self._stage(memory.global_mem, f"{self.name}/episodes", matrix)

    @staticmethod
    def _stage(space, key: str, data: np.ndarray) -> None:
        try:
            existing = space.get(key)
        except Exception:
            space.alloc(key, data)
            return
        if existing.shape != data.shape or not np.array_equal(existing, data):
            space.free(key)
            space.alloc(key, data)

    def describe(self) -> dict[str, object]:
        return {
            "kernel": self.name,
            "algorithm": self.algorithm_id,
            "block_level": self.block_level,
            "buffered": self.buffered,
            "threads_per_block": self.threads_per_block,
            "episodes": self.problem.n_episodes,
            "level": self.problem.level,
            "db_length": self.problem.n,
        }

    # -- helpers shared by traces -----------------------------------------
    def _card(self, device: DeviceSpecs):
        return timing_params_for(device)

    @property
    def chunk_chars(self) -> int:
        """Characters staged per shared-memory chunk (1 byte/char)."""
        return self.buffer_bytes

    @property
    def n_chunks(self) -> int:
        return -(-self.problem.n // self.chunk_chars)
