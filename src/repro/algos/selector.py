"""Adaptive algorithm selection.

The paper's conclusion: "a MapReduce-based implementation must
dynamically adapt the type and level of parallelism in order to obtain
the best performance" — episodes of length 1 want block-level buffered
parallelism, length 2 wants block-level unbuffered at small blocks,
length 3 wants thread-level.  :class:`AdaptiveSelector` operationalizes
that: given a problem and a card, it sweeps the (algorithm x thread
count) space with the timing model and returns the fastest
configuration.  This is the paper's future-work auto-tuner, implemented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.gpu.report import TimingReport
from repro.gpu.simulator import GpuSimulator
from repro.gpu.specs import DeviceSpecs
from repro.algos.base import MiningProblem
from repro.algos.registry import ALGORITHMS

#: The paper sweeps thread counts in this range (Figs. 6-9 x-axes).
DEFAULT_THREAD_SWEEP: tuple[int, ...] = tuple(range(32, 513, 32))


@dataclass(frozen=True)
class SelectionResult:
    """Winner of a selection sweep plus the full ranking."""

    algorithm_id: int
    threads_per_block: int
    report: TimingReport
    ranking: tuple[tuple[int, int, float], ...]  # (algo, threads, ms) sorted

    @property
    def best_ms(self) -> float:
        return self.report.total_ms

    def best_for_algorithm(self, algorithm_id: int) -> tuple[int, float]:
        """Best (threads, ms) for one algorithm within the sweep."""
        entries = [r for r in self.ranking if r[0] == algorithm_id]
        if not entries:
            raise ConfigError(f"algorithm {algorithm_id} not in sweep")
        _, threads, ms = min(entries, key=lambda r: r[2])
        return threads, ms


class AdaptiveSelector:
    """Model-driven (algorithm, thread-count) auto-tuner for one device."""

    def __init__(
        self,
        device: DeviceSpecs,
        thread_sweep: Sequence[int] = DEFAULT_THREAD_SWEEP,
        algorithms: Iterable[int] = (1, 2, 3, 4),
    ) -> None:
        if not thread_sweep:
            raise ConfigError("thread sweep must not be empty")
        self.device = device
        self.thread_sweep = tuple(thread_sweep)
        self.algorithms = tuple(algorithms)
        for a in self.algorithms:
            if a not in ALGORITHMS:
                raise ConfigError(f"unknown algorithm {a}")
        self._sim = GpuSimulator(device)

    def select(self, problem: MiningProblem) -> SelectionResult:
        """Sweep and return the fastest configuration for ``problem``."""
        ranking: list[tuple[int, int, float]] = []
        best: tuple[float, int, int, TimingReport] | None = None
        for algo_id in self.algorithms:
            cls = ALGORITHMS[algo_id]
            for t in self.thread_sweep:
                if t > self.device.max_threads_per_block:
                    continue
                kernel = cls(problem, threads_per_block=t)
                report = self._sim.time_only(kernel)
                ms = report.total_ms
                ranking.append((algo_id, t, ms))
                if best is None or ms < best[0]:
                    best = (ms, algo_id, t, report)
        assert best is not None  # sweep is non-empty by construction
        ranking.sort(key=lambda r: r[2])
        _, algo_id, threads, report = best
        return SelectionResult(
            algorithm_id=algo_id,
            threads_per_block=threads,
            report=report,
            ranking=tuple(ranking),
        )
