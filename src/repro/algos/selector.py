"""Adaptive algorithm selection.

The paper's conclusion: "a MapReduce-based implementation must
dynamically adapt the type and level of parallelism in order to obtain
the best performance" — episodes of length 1 want block-level buffered
parallelism, length 2 wants block-level unbuffered at small blocks,
length 3 wants thread-level.  :class:`AdaptiveSelector` operationalizes
that: given a problem and a card, it sweeps the (algorithm x thread
count) space with the timing model and returns the fastest
configuration.  This is the paper's future-work auto-tuner, implemented.

Selection cost is amortized two ways:

* infeasible configurations are rejected at *construction* time — a
  sweep in which every thread count exceeds the card's per-block limit
  raises :class:`~repro.errors.ConfigError` naming the card and sweep
  instead of failing deep inside a counting call;
* :meth:`AdaptiveSelector.select_cached` memoizes the full sweep per
  problem *shape* (level, episode/database-size buckets, policy,
  window), so a
  driver that counts many same-shaped batches (the level-wise miner,
  property-test loops) pays the ~64-point sweep once per shape instead
  of once per counting call.  Every cached configuration is exact —
  only the modeled speed of the choice depends on the shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.gpu.report import TimingReport
from repro.gpu.simulator import GpuSimulator
from repro.gpu.specs import DeviceSpecs
from repro.mining.policies import MatchPolicy
from repro.algos.base import MiningProblem
from repro.algos.registry import ALGORITHMS

#: The paper sweeps thread counts in this range (Figs. 6-9 x-axes).
DEFAULT_THREAD_SWEEP: tuple[int, ...] = tuple(range(32, 513, 32))


@dataclass(frozen=True)
class SelectionResult:
    """Winner of a selection sweep plus the full ranking."""

    algorithm_id: int
    threads_per_block: int
    report: TimingReport
    ranking: tuple[tuple[int, int, float], ...]  # (algo, threads, ms) sorted

    @property
    def best_ms(self) -> float:
        return self.report.total_ms

    def best_for_algorithm(self, algorithm_id: int) -> tuple[int, float]:
        """Best (threads, ms) for one algorithm within the sweep."""
        entries = [r for r in self.ranking if r[0] == algorithm_id]
        if not entries:
            raise ConfigError(f"algorithm {algorithm_id} not in sweep")
        _, threads, ms = min(entries, key=lambda r: r[2])
        return threads, ms


class AdaptiveSelector:
    """Model-driven (algorithm, thread-count) auto-tuner for one device."""

    def __init__(
        self,
        device: DeviceSpecs,
        thread_sweep: Sequence[int] = DEFAULT_THREAD_SWEEP,
        algorithms: Iterable[int] = (1, 2, 3, 4),
    ) -> None:
        if not thread_sweep:
            raise ConfigError("thread sweep must not be empty")
        self.device = device
        self.thread_sweep = tuple(thread_sweep)
        self.algorithms = tuple(algorithms)
        for a in self.algorithms:
            if a not in ALGORITHMS:
                raise ConfigError(f"unknown algorithm {a}")
        if all(t > device.max_threads_per_block for t in self.thread_sweep):
            raise ConfigError(
                f"no thread count in sweep {self.thread_sweep} fits "
                f"{device.name} (max_threads_per_block="
                f"{device.max_threads_per_block}); nothing to select from"
            )
        self._sim = GpuSimulator(device)
        self._cache: dict[tuple, SelectionResult] = {}

    def _feasible(self, algo_id: int, problem: MiningProblem) -> bool:
        """Block-level kernels decompose the database into segments, which
        is exact only for contiguous (RESET) matching."""
        return not (
            ALGORITHMS[algo_id].block_level
            and problem.policy is not MatchPolicy.RESET
        )

    def select(self, problem: MiningProblem) -> SelectionResult:
        """Sweep and return the fastest configuration for ``problem``."""
        ranking: list[tuple[int, int, float]] = []
        best: tuple[float, int, int, TimingReport] | None = None
        for algo_id in self.algorithms:
            if not self._feasible(algo_id, problem):
                continue
            cls = ALGORITHMS[algo_id]
            for t in self.thread_sweep:
                if t > self.device.max_threads_per_block:
                    continue
                kernel = cls(problem, threads_per_block=t)
                report = self._sim.time_only(kernel)
                ms = report.total_ms
                ranking.append((algo_id, t, ms))
                if best is None or ms < best[0]:
                    best = (ms, algo_id, t, report)
        if best is None:
            raise ConfigError(
                f"no algorithm in {self.algorithms} supports policy "
                f"{problem.policy.value!r}: block-level kernels (3, 4) "
                "require RESET (segment decomposition exactness)"
            )
        ranking.sort(key=lambda r: r[2])
        _, algo_id, threads, report = best
        return SelectionResult(
            algorithm_id=algo_id,
            threads_per_block=threads,
            report=report,
            ranking=tuple(ranking),
        )

    @staticmethod
    def shape_key(problem: MiningProblem) -> tuple:
        """Memoization key: (level, episode bucket, db bucket, policy, window).

        Episode counts and database length are bucketed by bit length
        (powers of two): the sweep's winner is stable within a bucket,
        and any residual mismatch costs only modeled speed, never
        exactness.  The database bucket matters — the thread- vs
        block-level crossover moves with ``n``, so a selection tuned on
        a short database must not be reused for a long one.
        """
        return (
            problem.level,
            problem.n_episodes.bit_length(),
            problem.n.bit_length(),
            problem.policy,
            problem.window,
        )

    def select_cached(self, problem: MiningProblem) -> SelectionResult:
        """Memoized :meth:`select`, keyed by :meth:`shape_key`."""
        key = self.shape_key(problem)
        hit = self._cache.get(key)
        if hit is None:
            hit = self.select(problem)
            self._cache[key] = hit
        return hit

    def cache_clear(self) -> None:
        """Drop all memoized selections (e.g. after recalibration)."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)
