"""Algorithm 2 — thread-level parallelism with shared-memory buffering
(paper §3.3.2).

Each thread still owns one episode, but the block stages the database
chunk-by-chunk into a shared-memory buffer: cooperative load, barrier,
scan the buffer, barrier, next chunk.  "The initial load time is high
... As more threads are added to a block Algorithm 2 exponentially
decreases in execution time" (Characterization 2): the per-thread load
share is ``chunk/t``, so the staging term decays hyperbolically with
the thread count while the scan term stays fixed.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.launch import LaunchConfig
from repro.gpu.memory import DeviceMemory
from repro.gpu.specs import DeviceSpecs
from repro.gpu.trace import KernelTrace, Pattern, Phase, Space
from repro.mining.counting import count_batch
from repro.algos.base import MiningKernel


class ThreadBufKernel(MiningKernel):
    """Paper Algorithm 2: one thread per episode, buffered."""

    name = "algo2-thread-buf"
    algorithm_id = 2
    block_level = False
    buffered = True

    def __init__(self, problem, threads_per_block, costs=None, buffer_bytes=None):
        from repro.gpu.calibration import a2_buffer_bytes

        if buffer_bytes is None:
            buffer_bytes = a2_buffer_bytes(threads_per_block)
        super().__init__(problem, threads_per_block, costs, buffer_bytes)

    def execute(self, memory: DeviceMemory, config: LaunchConfig) -> np.ndarray:
        p = self.problem
        db = memory.global_mem.get(f"{self.name}/db")
        # Functional equivalence: staging through shared memory does not
        # change the scanned character sequence; chunk boundaries do not
        # split matches because each thread scans the *whole* buffer
        # stream in order (state persists across chunks).
        memory.global_mem.counters.reads += p.n  # one staging pass
        return count_batch(db, p.matrix, p.alphabet_size, p.policy, p.window)

    def build_trace(self, device: DeviceSpecs, config: LaunchConfig) -> KernelTrace:
        card = self._card(device)
        t = config.threads_per_block
        chunk = self.chunk_chars
        chunks = self.n_chunks
        load = Phase(
            name="load",
            # staged as 4-byte words so CC 1.1 half-warps coalesce
            elements_per_thread=chunk / (4.0 * t),
            instructions_per_element=self.costs.load_instructions,
            chain_cycles_per_element=card.a2_load_chain,
            space=Space.GLOBAL,
            pattern=Pattern.COALESCED,
            bytes_per_element=4.0,
            repeats=float(chunks),
            fixed_cycles_per_repeat=2.0 * self.costs.barrier_cycles,
        )
        scan = Phase(
            name="scan",
            elements_per_thread=float(chunk),
            instructions_per_element=self.costs.fsm_instructions_smem,
            chain_cycles_per_element=card.smem_chain,
            space=Space.SHARED,
            pattern=Pattern.NONE,
            repeats=float(chunks),
        )
        return KernelTrace(
            kernel_name=self.name,
            phases=(load, scan),
            notes=(
                f"{chunks} chunks of {chunk} B; cooperative load "
                "(no compute overlaps the load, paper C2); reduce=identity"
            ),
        )
