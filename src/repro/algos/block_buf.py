"""Algorithm 4 — block-level parallelism with shared-memory buffering
(paper §3.3.3).

One block per episode, database staged chunk-by-chunk into shared
memory; thread ``i`` always scans the same shared-memory window — "the
data at those addresses will change as the buffer is updated".  The
segment boundaries therefore recur *every chunk*, so the span fix-up
runs per chunk and its cost scales with both the thread count and the
episode length — why "Algorithm 4 [has] an almost constant slope when
solving the problem size at Level 3" (Characterization 3).

The reduce is cheap here: partial counts live in the same shared memory
as the buffer, folded by a log2 tree with a single global atomic per
block — which is what leaves Algorithm 4 sub-millisecond territory on
small problems (Characterization 4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.launch import LaunchConfig
from repro.gpu.memory import DeviceMemory
from repro.gpu.specs import DeviceSpecs
from repro.gpu.trace import KernelTrace, Pattern, Phase, Space
from repro.mining.spanning import count_segmented
from repro.algos.base import MiningKernel


class BlockBufKernel(MiningKernel):
    """Paper Algorithm 4: one block per episode, buffered."""

    name = "algo4-block-buf"
    algorithm_id = 4
    block_level = True
    buffered = True

    def execute(self, memory: DeviceMemory, config: LaunchConfig) -> np.ndarray:
        p = self.problem
        db = memory.global_mem.get(f"{self.name}/db")
        memory.global_mem.counters.reads += p.n * config.total_blocks
        t = config.threads_per_block
        # Thread i's logical segment is the concatenation of its windows
        # across chunks: [i*s, (i+1)*s) of chunk 0, then of chunk 1, ...
        # which equals an interleaved partition of the database.  The
        # span fix handles window boundaries within each chunk; chunk
        # boundaries belong to adjacent windows of *different* chunks
        # held by edge threads, handled the same way.  Functionally this
        # equals segmenting the whole database into t*chunks windows.
        n_segments = min(p.n, t * self.n_chunks)
        seg = count_segmented(
            db,
            p.matrix,
            p.alphabet_size,
            n_segments=max(1, n_segments),
            policy=p.policy,
            fix_spanning=True,
        )
        return seg.totals

    def build_trace(self, device: DeviceSpecs, config: LaunchConfig) -> KernelTrace:
        card = self._card(device)
        t = config.threads_per_block
        level = self.problem.level
        chunk = self.chunk_chars
        chunks = self.n_chunks
        load = Phase(
            name="load",
            # staged as 4-byte words so CC 1.1 half-warps coalesce
            elements_per_thread=chunk / (4.0 * t),
            instructions_per_element=self.costs.load_instructions,
            chain_cycles_per_element=card.a4_load_chain,
            space=Space.GLOBAL,
            pattern=Pattern.COALESCED,
            bytes_per_element=4.0,
            repeats=float(chunks),
            fixed_cycles_per_repeat=2.0 * self.costs.barrier_cycles,
        )
        scan = Phase(
            name="scan",
            elements_per_thread=chunk / t + max(0, level - 1),
            instructions_per_element=self.costs.fsm_instructions_smem,
            chain_cycles_per_element=card.smem_chain,
            space=Space.SHARED,
            pattern=Pattern.NONE,
            repeats=float(chunks),
        )
        span = Phase(
            name="span-fix",
            serial_elements=float(t * max(0, level - 1)),
            serial_cycles_per_element=self.costs.stitch_cycles_per_char,
            repeats=float(chunks),  # boundaries recur every chunk
        )
        reduce = Phase(
            name="reduce",
            serial_elements=float(max(1, math.ceil(math.log2(max(2, t))))),
            serial_cycles_per_element=self.costs.reduce_step_cycles,
            atomics=1.0,  # single folded atomic per block
        )
        return KernelTrace(
            kernel_name=self.name,
            phases=(load, scan, span, reduce),
            notes=(
                f"{chunks} chunks of {chunk} B; span fix per chunk; "
                "reduce=shared tree + one atomic"
            ),
        )
