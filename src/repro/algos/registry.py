"""Algorithm registry: number/name -> kernel class."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.algos.base import MiningKernel
from repro.algos.thread_tex import ThreadTexKernel
from repro.algos.thread_buf import ThreadBufKernel
from repro.algos.block_tex import BlockTexKernel
from repro.algos.block_buf import BlockBufKernel

#: Keyed by the paper's algorithm number.
ALGORITHMS: dict[int, type[MiningKernel]] = {
    1: ThreadTexKernel,
    2: ThreadBufKernel,
    3: BlockTexKernel,
    4: BlockBufKernel,
}

_BY_NAME = {cls.name: cls for cls in ALGORITHMS.values()}


def get_algorithm(key: "int | str") -> type[MiningKernel]:
    """Look up a kernel class by paper number (1-4) or kernel name."""
    if isinstance(key, int):
        try:
            return ALGORITHMS[key]
        except KeyError:
            raise ConfigError(
                f"unknown algorithm number {key}; the paper defines 1-4"
            ) from None
    if key in _BY_NAME:
        return _BY_NAME[key]
    raise ConfigError(f"unknown algorithm {key!r}; known: {sorted(_BY_NAME)}")


def algorithm_names() -> list[str]:
    return [cls.name for cls in ALGORITHMS.values()]
