"""Algorithm 1 — thread-level parallelism, texture memory (paper §3.3.2).

One thread searches for one episode by scanning the whole database
through texture memory.  Every thread starts at offset zero, so the
access pattern is a broadcast: the texture cache serves the entire warp
(and, in steady state, the entire SM) from one stream.  The MapReduce
*reduce* is the identity — each thread's count is final.

When the grid carries more threads than episodes (high thread counts at
low levels), surplus threads re-search episodes ``tid mod E`` — work
that "contributes nothing but contention" (paper §5.2.1) but keeps the
warp instruction stream uniform, exactly the uptrend Fig. 7(a) shows.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.launch import LaunchConfig
from repro.gpu.memory import DeviceMemory
from repro.gpu.specs import DeviceSpecs
from repro.gpu.trace import KernelTrace, Pattern, Phase, Space
from repro.mining.counting import count_batch
from repro.algos.base import MiningKernel


class ThreadTexKernel(MiningKernel):
    """Paper Algorithm 1: one thread per episode, unbuffered."""

    name = "algo1-thread-tex"
    algorithm_id = 1
    block_level = False
    buffered = False

    def execute(self, memory: DeviceMemory, config: LaunchConfig) -> np.ndarray:
        p = self.problem
        db = memory.texture_mem.get(f"{self.name}/db")
        memory.texture_mem.counters.reads += p.n * min(
            config.total_threads, p.n_episodes
        )
        # map: per-episode counts; reduce: identity
        return count_batch(db, p.matrix, p.alphabet_size, p.policy, p.window)

    def build_trace(self, device: DeviceSpecs, config: LaunchConfig) -> KernelTrace:
        card = self._card(device)
        scan = Phase(
            name="scan",
            elements_per_thread=float(self.problem.n),
            instructions_per_element=self.costs.fsm_instructions_tex,
            chain_cycles_per_element=card.tex_broadcast_chain,
            space=Space.TEXTURE,
            pattern=Pattern.BROADCAST,
            bytes_per_element=1.0,
        )
        return KernelTrace(
            kernel_name=self.name,
            phases=(scan,),
            notes="map=FSM scan per episode; reduce=identity",
        )
