"""The paper's four GPU mining algorithms plus the adaptive selector.

Algorithms are the cartesian product of the parallelism dimension
(thread-level: one thread per episode; block-level: one block per
episode) and the data-access dimension (texture memory; shared-memory
buffering) — paper §3.3 and Fig. 4.
"""

from repro.algos.base import MiningKernel, MiningProblem
from repro.algos.thread_tex import ThreadTexKernel
from repro.algos.thread_buf import ThreadBufKernel
from repro.algos.block_tex import BlockTexKernel
from repro.algos.block_buf import BlockBufKernel
from repro.algos.registry import ALGORITHMS, get_algorithm, algorithm_names
from repro.algos.selector import AdaptiveSelector, SelectionResult

__all__ = [
    "MiningKernel",
    "MiningProblem",
    "ThreadTexKernel",
    "ThreadBufKernel",
    "BlockTexKernel",
    "BlockBufKernel",
    "ALGORITHMS",
    "get_algorithm",
    "algorithm_names",
    "AdaptiveSelector",
    "SelectionResult",
]
