"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses map
onto subsystem failure modes (configuration, kernel launch, device
memory, workload validation, experiment definitions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class LaunchError(ReproError):
    """A kernel launch configuration violates device limits.

    Mirrors the CUDA driver's ``CUDA_ERROR_INVALID_CONFIGURATION``: raised
    when a block exceeds the per-block thread limit, requests more shared
    memory than a multiprocessor owns, or a grid dimension is zero.
    """


class DeviceMemoryError(ReproError):
    """An allocation exceeds device memory or an access is out of bounds."""


class ValidationError(ReproError):
    """Input data (episodes, databases, alphabets) failed validation."""


class ExperimentError(ReproError):
    """An experiment definition is malformed or references unknown entities."""


class MiningError(ReproError):
    """The mining driver was asked to do something unsupported."""


class ArtifactError(ReproError):
    """A JSON artifact is missing, truncated, or structurally wrong.

    Raised by :mod:`repro.resilience.artifacts` when a file that should
    hold a JSON object (a benchmark trajectory, a calibration profile,
    a lint baseline) cannot be read as one.  Distinct from
    :class:`ValidationError` so callers can answer "regenerate the
    artifact" instead of "fix the input data".
    """


class CheckpointError(ReproError):
    """A stream checkpoint is unreadable, torn, corrupt, or mismatched.

    Raised by :mod:`repro.streaming.checkpoint` when a file fails its
    digest or schema validation, and by resume when the checkpoint's
    recorded configuration contradicts the resuming miner's.
    """
