"""Span-tree recorder with counters and gauges.

A :class:`Recorder` is handed to a miner (or engine) for one run and
collects:

* a tree of :class:`Span` records — nested timed scopes opened with
  ``with recorder.span(name, **attrs):`` — timed through the
  :mod:`repro.obs.clock` seam;
* flat integer ``counters`` (monotone accumulators: candidates counted,
  cache hits, shards dispatched) and float ``gauges`` (last-write-wins
  readings: selected thread count, kernel milliseconds);

Spans balance under exceptions (the context manager closes the span in
``__exit__`` and marks it errored), so a faulted run still yields a
well-formed tree.  Span retention is bounded by ``max_spans``; beyond
the cap new spans are timed but dropped from the tree (counted in
``dropped_spans``) so a long stream cannot grow memory without bound,
while counters keep accumulating exactly.

:class:`NullRecorder` is the zero-cost default: every method is a
no-op, ``span`` returns one shared inert context manager, and the
``telemetry_overhead`` bench series gates that instrumented-but-disabled
code stays within 1% of its pre-instrumentation timing.  Instrumented
call sites guard any non-trivial attribute computation behind
``recorder.enabled``.

Thread/process rules: a recorder belongs to the parent process and is
single-threaded — worker processes are never instrumented (shard work
is observed from the parent side of the pool), and anything recorded
from a pool completion callback is aggregated into plain lists first
and folded into the recorder on the owning thread.
"""

from __future__ import annotations

from typing import Any

from repro.obs import clock

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Span",
    "resolve_recorder",
]


class Span:
    """One timed scope: name, attributes, children, relative timings.

    ``start_s`` is seconds since the owning recorder's epoch (the
    recorder's construction instant), ``duration_s`` is filled at scope
    exit (-1.0 while open), and ``error`` marks scopes closed by an
    exception.  ``attrs`` is a plain mutable dict, so instrumentation
    may annotate a span after the scope closed (e.g. per-shard timing
    aggregated once a dispatch completes).
    """

    __slots__ = ("name", "attrs", "start_s", "duration_s", "children", "error")

    def __init__(self, name: str, attrs: "dict[str, Any]", start_s: float) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.duration_s = -1.0
        self.children: "list[Span]" = []
        self.error = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.duration_s:.6f}s" if self.duration_s >= 0 else "open"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


class _SpanScope:
    """Context manager returned by :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "Recorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        rec = self._recorder
        span = self._span
        if rec._n_spans < rec.max_spans:
            parent = rec._stack[-1] if rec._stack else None
            (parent.children if parent is not None else rec.roots).append(span)
            rec._n_spans += 1
        else:
            # over budget: the span still times and balances, but stays
            # off the tree (its children land on it and are discarded
            # with it) — bounded retention for unbounded streams
            rec.dropped_spans += 1
        rec._stack.append(span)
        span.start_s = clock.now() - rec._epoch
        return span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        rec = self._recorder
        span = rec._stack.pop()
        span.duration_s = clock.now() - rec._epoch - span.start_s
        if exc_type is not None:
            span.error = True
        return False


class Recorder:
    """Collects one run's span tree, counters, and gauges.

    One recorder observes one logical run (a ``mine()`` call, a
    consumed stream, a calibration pass); hand a fresh instance to each
    run whose trace should stand alone.  ``balanced`` is True whenever
    no span is currently open — after any completed run, including runs
    that raised, the tree must be balanced (tested under injected
    faults).
    """

    enabled = True

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self.roots: "list[Span]" = []
        self.counters: "dict[str, int]" = {}
        self.gauges: "dict[str, float]" = {}
        self.dropped_spans = 0
        self._stack: "list[Span]" = []
        self._n_spans = 0
        self._epoch = clock.now()

    def span(self, name: str, **attrs: Any) -> _SpanScope:
        """Open a nested timed scope: ``with rec.span("level", level=2):``."""
        return _SpanScope(self, Span(name, attrs, 0.0))

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the integer counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set the last-write-wins gauge ``name``."""
        self.gauges[name] = float(value)

    def annotate(self, **attrs: Any) -> None:
        """Merge ``attrs`` into the innermost open span (no-op at root)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    @property
    def balanced(self) -> bool:
        """True when every opened span has been closed."""
        return not self._stack

    @property
    def n_spans(self) -> int:
        """Spans retained on the tree (dropped spans excluded)."""
        return self._n_spans

    def walk(self) -> "list[Span]":
        """Every retained span, preorder."""
        out: "list[Span]" = []
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            out.append(span)
            stack.extend(reversed(span.children))
        return out


class _NullSpanScope:
    """Shared inert span scope — allocation-free on the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanScope":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    # inert stand-ins for the Span surface instrumentation touches;
    # attrs hands out a throwaway dict so stray writes cannot leak
    # into shared state
    @property
    def attrs(self) -> "dict[str, Any]":
        return {}

    @property
    def duration_s(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpanScope()


class NullRecorder:
    """The zero-cost disabled recorder (shared default).

    Every method no-ops; ``span`` hands back one shared inert scope.
    Instrumented code may call it unconditionally — the bench gate
    holds the disabled path to <1% overhead — but should guard any
    expensive attribute computation behind ``recorder.enabled``.
    """

    enabled = False
    # class-level empty views so report-building code can read the same
    # surface off either recorder type without isinstance checks
    roots: "tuple[Span, ...]" = ()
    counters: "dict[str, int]" = {}
    gauges: "dict[str, float]" = {}
    dropped_spans = 0
    balanced = True
    n_spans = 0

    def span(self, name: str, **attrs: Any) -> _NullSpanScope:
        return _NULL_SPAN

    def count(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass

    def walk(self) -> "list[Span]":
        return []


#: the shared disabled recorder every uninstrumented run records into
NULL_RECORDER = NullRecorder()


def resolve_recorder(recorder: "Recorder | NullRecorder | None") -> "Recorder | NullRecorder":
    """``None`` -> the shared :data:`NULL_RECORDER`; else the recorder."""
    return NULL_RECORDER if recorder is None else recorder
