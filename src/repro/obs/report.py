"""Structured run reports: the serialized form of one run's telemetry.

A :class:`RunReport` snapshots a :class:`~repro.obs.recorder.Recorder`
plus the run's structural context — degradation events from the
supervised fleet, count-cache statistics, calibration provenance — into
one JSON payload with a versioned schema (:data:`REPORT_SCHEMA`).
Writes are atomic through :func:`repro.resilience.artifacts.
write_json_artifact`; reads route through ``read_json_artifact`` so a
truncated or wrong-schema file fails as a structured
:class:`~repro.errors.ArtifactError`, never as garbage.

Schema versioning: ``schema`` is bumped whenever a field changes
meaning or shape; readers reject other versions with a regeneration
hint rather than guessing (the checkpoint-schema precedent).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ArtifactError
from repro.obs import clock
from repro.obs.recorder import NullRecorder, Recorder, Span
from repro.resilience.artifacts import read_json_artifact, write_json_artifact

__all__ = ["REPORT_SCHEMA", "REPORT_KIND", "RunReport"]

#: current report schema; see module docstring for the bump policy
REPORT_SCHEMA = 1
#: artifact discriminator, so a report is never confused for a
#: checkpoint or a bench payload by key coincidence
REPORT_KIND = "repro-run-report"


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/containers to plain JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def _span_payload(span: Span) -> "dict[str, Any]":
    return {
        "name": span.name,
        "start_s": round(span.start_s, 9),
        "duration_s": round(max(span.duration_s, 0.0), 9),
        "attrs": _jsonable(span.attrs),
        **({"error": True} if span.error else {}),
        "children": [_span_payload(c) for c in span.children],
    }


def _event_payload(event: Any) -> "dict[str, Any]":
    """Serialize a DegradationEvent (or an already-plain dict)."""
    if isinstance(event, Mapping):
        return dict(event)
    return {
        "kind": event.kind,
        "detail": event.detail,
        "shards": list(event.shards),
        "attempt": int(event.attempt),
    }


class RunReport:
    """One run's serialized telemetry (see module docstring)."""

    def __init__(
        self,
        command: str,
        wall_s: float,
        spans: "list[dict[str, Any]]",
        counters: "dict[str, int]",
        gauges: "dict[str, float]",
        degradation_events: "list[dict[str, Any]]",
        cache: "dict[str, int] | None" = None,
        calibration: "dict[str, Any] | None" = None,
        meta: "dict[str, Any] | None" = None,
        created_at: "str | None" = None,
        dropped_spans: int = 0,
    ) -> None:
        self.command = command
        self.wall_s = float(wall_s)
        self.spans = spans
        self.counters = counters
        self.gauges = gauges
        self.degradation_events = degradation_events
        self.cache = cache
        self.calibration = calibration
        self.meta = meta or {}
        self.created_at = created_at if created_at is not None else clock.utc_stamp()
        self.dropped_spans = int(dropped_spans)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_recorder(
        cls,
        recorder: "Recorder | NullRecorder",
        command: str,
        degradation_events: "Iterable[Any]" = (),
        cache: "Mapping[str, int] | None" = None,
        calibration: "Mapping[str, Any] | None" = None,
        meta: "Mapping[str, Any] | None" = None,
    ) -> "RunReport":
        """Snapshot ``recorder`` (plus run context) into a report.

        ``wall_s`` is the summed duration of the root spans — for the
        instrumented miners there is exactly one root (the run scope),
        so it is the run's wall time.
        """
        roots = list(recorder.roots)
        wall_s = sum(max(s.duration_s, 0.0) for s in roots)
        return cls(
            command=command,
            wall_s=wall_s,
            spans=[_span_payload(s) for s in roots],
            counters=dict(recorder.counters),
            gauges={k: float(v) for k, v in recorder.gauges.items()},
            degradation_events=[_event_payload(e) for e in degradation_events],
            cache=dict(cache) if cache is not None else None,
            calibration=dict(calibration) if calibration is not None else None,
            meta=dict(meta) if meta is not None else None,
            dropped_spans=recorder.dropped_spans,
        )

    # -- (de)serialization ----------------------------------------------

    def to_payload(self) -> "dict[str, Any]":
        return {
            "schema": REPORT_SCHEMA,
            "kind": REPORT_KIND,
            "command": self.command,
            "created_at": self.created_at,
            "wall_s": round(self.wall_s, 9),
            "spans": self.spans,
            "counters": _jsonable(self.counters),
            "gauges": _jsonable(self.gauges),
            "degradation_events": [_jsonable(e) for e in self.degradation_events],
            "cache": _jsonable(self.cache),
            "calibration": _jsonable(self.calibration),
            "meta": _jsonable(self.meta),
            "dropped_spans": self.dropped_spans,
        }

    @classmethod
    def from_payload(cls, payload: "Mapping[str, Any]") -> "RunReport":
        kind = payload.get("kind")
        if kind != REPORT_KIND:
            raise ArtifactError(
                f"not a run report (kind={kind!r}, expected {REPORT_KIND!r})"
            )
        schema = payload.get("schema")
        if schema != REPORT_SCHEMA:
            raise ArtifactError(
                f"run report schema {schema!r} is not supported (this "
                f"build reads schema {REPORT_SCHEMA}); re-run the "
                "traced command to regenerate it"
            )
        return cls(
            command=str(payload.get("command", "")),
            wall_s=float(payload.get("wall_s", 0.0)),
            spans=list(payload.get("spans", [])),
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            degradation_events=list(payload.get("degradation_events", [])),
            cache=payload.get("cache"),
            calibration=payload.get("calibration"),
            meta=dict(payload.get("meta", {})),
            created_at=payload.get("created_at"),
            dropped_spans=int(payload.get("dropped_spans", 0)),
        )

    def write(self, path: "str | Path") -> Path:
        """Atomically write the report to ``path`` (REP002)."""
        return write_json_artifact(path, self.to_payload())

    @classmethod
    def read(cls, path: "str | Path") -> "RunReport":
        """Load and schema-validate a report written by :meth:`write`."""
        payload = read_json_artifact(
            path,
            expect_keys=("schema", "kind", "spans", "counters"),
            regenerate_hint="re-run the command with --trace to regenerate it",
        )
        return cls.from_payload(payload)

    # -- analysis --------------------------------------------------------

    def iter_spans(self) -> "Iterable[dict[str, Any]]":
        """Every span payload, preorder."""
        stack = list(reversed(self.spans))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.get("children", [])))

    def phase_rows(self) -> "list[tuple[str, int, float, float]]":
        """Aggregate spans by name: ``(phase, calls, total_s, pct_of_wall)``.

        Sorted by total duration, descending.  Nested spans both count
        (a ``level`` span's time is also inside its ``mine`` parent) —
        the table reads as "time attributable to each phase", not a
        partition.
        """
        totals: "dict[str, tuple[int, float]]" = {}
        for span in self.iter_spans():
            name = str(span.get("name", "?"))
            calls, total = totals.get(name, (0, 0.0))
            totals[name] = (calls + 1, total + float(span.get("duration_s", 0.0)))
        wall = self.wall_s
        rows = [
            (name, calls, total, (100.0 * total / wall) if wall > 0 else 0.0)
            for name, (calls, total) in totals.items()
        ]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows
