"""The sanctioned timing seam (REP006).

Counting paths (``repro.mining`` / ``repro.streaming``) must stay pure
functions of the event stream — REP006 forbids clock reads there, and
checkpoint/resume bit-identity depends on it.  But the *measurement*
side of the reproduction (calibration probes, the reference miner's
timing report, span telemetry) legitimately reads the monotonic clock.
This module is the one blessed route: every timing read in the repo
goes through :func:`now`, so the lint rule can treat ``repro.obs.clock``
as the sole sanctioned seam and the full set of timing sites stays
greppable in one place.

Nothing here may ever feed *counted* state — timings go into spans,
reports, and calibration profiles, never into candidate generation or
elimination decisions.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone

__all__ = ["now", "utc_stamp"]


def now() -> float:
    """Monotonic seconds for interval measurement (``perf_counter``)."""
    return time.perf_counter()


def utc_stamp() -> str:
    """ISO-8601 UTC wallclock stamp for artifact provenance fields."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")
