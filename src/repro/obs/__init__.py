"""Run-scoped observability: spans, counters, and structured reports.

The telemetry substrate the multi-dimensional characterization needs at
*runtime* (ROADMAP items 2 and 4): a :class:`Recorder` collects a span
tree with monotonic timings plus structural counters/gauges while a
mining or streaming run executes, and a :class:`RunReport` serializes
the result — spans, counters, degradation events, cache stats,
calibration provenance — through the atomic artifact layer with a
versioned schema.

Design rules (see CONTRACTS.md · Observability contract):

* every timing read goes through :mod:`repro.obs.clock`, the single
  sanctioned seam (REP006 recognizes it; nothing else in the counting
  paths may touch the clock);
* telemetry is disabled by default: the shared :data:`NULL_RECORDER`
  no-ops every call, so uninstrumented behavior — and performance,
  gated by the ``telemetry_overhead`` bench series — is unchanged;
* recorders never cross a process boundary: worker processes are not
  instrumented, the parent observes shards from its side of the pool;
* counters and gauges are structural (candidate counts, cache hits,
  selector choices — pure functions of the seeded input); wallclock
  lives only in span timings, so two seeded runs produce identical
  counters even though their spans time differently.
"""

from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    resolve_recorder,
)
from repro.obs.report import REPORT_SCHEMA, RunReport

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "REPORT_SCHEMA",
    "RunReport",
    "Span",
    "resolve_recorder",
]
