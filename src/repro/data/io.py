"""Database persistence: symbol streams round-trip as text or npy."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.mining.alphabet import Alphabet


def save_database(
    path: "str | Path", db: np.ndarray, alphabet: Alphabet | None = None
) -> Path:
    """Save a database; ``.txt`` writes symbols, anything else ``.npy``."""
    path = Path(path)
    db = np.asarray(db)
    if db.ndim != 1 or db.dtype != np.uint8:
        raise ValidationError("database must be a 1-D uint8 array")
    if path.suffix == ".txt":
        if alphabet is None:
            raise ValidationError("saving .txt requires an alphabet")
        path.write_text(alphabet.decode(db))
    else:
        np.save(path.with_suffix(".npy"), db)
        path = path.with_suffix(".npy")
    return path


def load_database(
    path: "str | Path", alphabet: Alphabet | None = None
) -> np.ndarray:
    """Load a database saved by :func:`save_database`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no database file at {path}")
    if path.suffix == ".txt":
        if alphabet is None:
            raise ValidationError("loading .txt requires an alphabet")
        return alphabet.encode(path.read_text().strip())
    arr = np.load(path)
    if arr.ndim != 1:
        raise ValidationError(f"{path} does not contain a 1-D database")
    return arr.astype(np.uint8)
