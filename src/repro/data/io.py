"""Database persistence: symbol streams round-trip as text or npy."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.mining.alphabet import Alphabet
from repro.resilience.atomic import atomic_open, atomic_write_text


def save_database(
    path: "str | Path", db: np.ndarray, alphabet: Alphabet | None = None
) -> Path:
    """Save a database; ``.txt`` writes symbols, anything else ``.npy``.

    Writes are atomic (REP002): an interrupted save leaves any previous
    database file intact rather than a torn one.
    """
    path = Path(path)
    db = np.asarray(db)
    if db.ndim != 1 or db.dtype != np.uint8:
        raise ValidationError("database must be a 1-D uint8 array")
    if path.suffix == ".txt":
        if alphabet is None:
            raise ValidationError("saving .txt requires an alphabet")
        atomic_write_text(path, alphabet.decode(db))
    else:
        path = path.with_suffix(".npy")
        with atomic_open(path, "wb") as fh:
            np.save(fh, db)
    return path


def load_database(
    path: "str | Path", alphabet: Alphabet | None = None
) -> np.ndarray:
    """Load a database saved by :func:`save_database`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no database file at {path}")
    if path.suffix == ".txt":
        if alphabet is None:
            raise ValidationError("loading .txt requires an alphabet")
        return alphabet.encode(path.read_text().strip())
    arr = np.load(path)
    if arr.ndim != 1:
        raise ValidationError(f"{path} does not contain a 1-D database")
    return arr.astype(np.uint8)
