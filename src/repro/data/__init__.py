"""Workload generators and persistence.

The paper's evaluation database is a 393,019-letter stream over A-Z
(§5); :func:`paper_database` regenerates it (seeded).  The neuroscience
and market-basket generators exercise the same code paths on workloads
shaped like the application domains the paper motivates (§1, §3.1).
"""

from repro.data.synthetic import (
    paper_database,
    random_database,
    stream_chunks,
    PAPER_DB_LENGTH,
)
from repro.data.spikes import SpikeTrainConfig, generate_spike_stream, PlantedEpisode
from repro.data.market import MarketConfig, generate_market_stream
from repro.data.io import save_database, load_database

__all__ = [
    "paper_database",
    "random_database",
    "stream_chunks",
    "PAPER_DB_LENGTH",
    "SpikeTrainConfig",
    "generate_spike_stream",
    "PlantedEpisode",
    "MarketConfig",
    "generate_market_stream",
    "save_database",
    "load_database",
]
