"""Market-basket temporal stream (paper §3.1's prototypical example).

"A store might want to know how often a customer buys product B given
that product A was purchased earlier" — {peanut butter, bread} ->
{jelly}.  The generator emits a purchase-event stream where a set of
*rules* (ordered product sequences) fire probabilistically: once a
customer buys the antecedent products in order, the consequent follows
within a bounded number of events.  Order matters, distinguishing
``<bread, peanut butter>`` from ``<peanut butter, bread>`` exactly as
the paper stresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.mining.alphabet import Alphabet
from repro.util.rng import make_rng


@dataclass(frozen=True)
class MarketConfig:
    """Configuration of the purchase stream."""

    n_products: int = 20
    n_events: int = 40_000
    #: ordered product rules and their firing probability per event slot
    rules: tuple[tuple[tuple[int, ...], float], ...] = ()
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_products < 2 or self.n_products > 255:
            raise ValidationError(
                f"n_products must be in [2, 255], got {self.n_products}"
            )
        if self.n_events < 0:
            raise ValidationError("n_events must be >= 0")
        for seq, p in self.rules:
            if len(set(seq)) != len(seq) or len(seq) < 2:
                raise ValidationError(
                    f"rule sequence must have >= 2 distinct products, got {seq}"
                )
            if any(s >= self.n_products for s in seq):
                raise ValidationError(f"rule {seq} references unknown product")
            if not 0.0 <= p <= 1.0:
                raise ValidationError(f"rule probability {p} out of [0, 1]")

    def alphabet(self) -> Alphabet:
        return Alphabet.of_size(self.n_products)


def generate_market_stream(config: MarketConfig) -> np.ndarray:
    """Emit the purchase-event symbol stream.

    Each event slot either fires one of the rules (emitting its full
    ordered sequence, contiguously — so both RESET and SUBSEQUENCE
    counting recover it) or emits one background purchase.
    """
    rng = make_rng(config.seed)
    out: list[int] = []
    rule_probs = np.array([p for _, p in config.rules], dtype=np.float64)
    total_rule_p = float(rule_probs.sum())
    if total_rule_p > 1.0:
        raise ValidationError(
            f"rule probabilities sum to {total_rule_p:.3f} > 1"
        )
    while len(out) < config.n_events:
        u = float(rng.random())
        emitted = False
        acc = 0.0
        for (seq, p) in config.rules:
            acc += p
            if u < acc:
                out.extend(seq)
                emitted = True
                break
        if not emitted:
            out.append(int(rng.integers(0, config.n_products)))
    return np.asarray(out[: config.n_events], dtype=np.uint8)
