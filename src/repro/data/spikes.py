"""Neuronal spike-train workload (the paper's motivating domain, §1).

Neuroscientists record "the timing of hundreds of neurons" and mine the
event stream for frequent episodes revealing connectivity [14, 17].
This generator produces that shape of data: each neuron fires as an
independent Poisson process, and *planted episodes* — ordered firing
cascades ``A -> B -> C`` with bounded inter-spike lag — are injected at
a controlled rate.  The merged, time-ordered event stream is then
symbol-coded, giving mining examples a ground truth to recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.mining.alphabet import Alphabet
from repro.mining.episode import Episode
from repro.util.rng import make_rng


@dataclass(frozen=True)
class PlantedEpisode:
    """A firing cascade injected into the stream."""

    neurons: tuple[int, ...]  # ordered neuron ids
    occurrences: int  # how many cascades to plant
    max_lag: int = 3  # symbols of background noise allowed between steps

    def __post_init__(self) -> None:
        if len(self.neurons) < 1:
            raise ValidationError("planted episode needs at least one neuron")
        if len(set(self.neurons)) != len(self.neurons):
            raise ValidationError("planted episode neurons must be distinct")
        if self.occurrences < 0:
            raise ValidationError("occurrences must be >= 0")
        if self.max_lag < 0:
            raise ValidationError("max_lag must be >= 0")

    def to_episode(self) -> Episode:
        return Episode(self.neurons)


@dataclass(frozen=True)
class SpikeTrainConfig:
    """Configuration of the synthetic recording."""

    n_neurons: int = 26
    background_events: int = 50_000
    planted: tuple[PlantedEpisode, ...] = ()
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_neurons < 1 or self.n_neurons > 255:
            raise ValidationError(
                f"n_neurons must be in [1, 255], got {self.n_neurons}"
            )
        if self.background_events < 0:
            raise ValidationError("background_events must be >= 0")
        for p in self.planted:
            if any(nid >= self.n_neurons for nid in p.neurons):
                raise ValidationError(
                    f"planted episode {p.neurons} references neuron >= "
                    f"{self.n_neurons}"
                )

    def alphabet(self) -> Alphabet:
        return Alphabet.of_size(self.n_neurons)


def generate_spike_stream(config: SpikeTrainConfig) -> np.ndarray:
    """Produce the symbol-coded, time-ordered event stream.

    Background spikes are uniform over neurons (a merged homogeneous
    Poisson population is order-uniform); cascades are spliced in at
    uniformly random anchor positions with ``max_lag`` background
    symbols permitted between consecutive cascade events, so a
    ``SUBSEQUENCE`` (or suitable ``EXPIRING``) count recovers at least
    the planted occurrences.
    """
    rng = make_rng(config.seed)
    stream = rng.integers(
        0, config.n_neurons, size=config.background_events, dtype=np.int64
    ).astype(np.uint8)
    pieces: list[np.ndarray] = [stream]
    for plant in config.planted:
        for _ in range(plant.occurrences):
            cascade = []
            for neuron in plant.neurons:
                cascade.append(neuron)
                lag = int(rng.integers(0, plant.max_lag + 1))
                if lag:
                    cascade.extend(
                        rng.integers(0, config.n_neurons, size=lag, dtype=np.int64)
                    )
            pieces.append(np.asarray(cascade, dtype=np.uint8))
    # Splice cascades at random anchors of the background stream.
    if len(pieces) == 1:
        return stream
    background = pieces[0]
    inserts = pieces[1:]
    anchors = np.sort(rng.integers(0, background.size + 1, size=len(inserts)))
    out: list[np.ndarray] = []
    prev = 0
    for anchor, chunk in zip(anchors, inserts):
        out.append(background[prev:anchor])
        out.append(chunk)
        prev = anchor
    out.append(background[prev:])
    return np.concatenate(out).astype(np.uint8)
