"""Synthetic symbol databases.

The paper's experiments use a database of 393,019 letters over the
uppercase alphabet (§5).  The original stream is unavailable; a seeded
uniform stream of the same length and alphabet is the substitution
(DESIGN.md §2) — the characterization dimensions (algorithm, level,
card, thread count) do not depend on symbol statistics, only on the
database length and candidate count.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.mining.alphabet import Alphabet, UPPERCASE
from repro.util.rng import make_rng

#: Length of the paper's evaluation database (§5).
PAPER_DB_LENGTH: int = 393_019


def random_database(
    length: int,
    alphabet: Alphabet = UPPERCASE,
    seed: "int | np.random.Generator | None" = None,
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """A uint8-coded random symbol stream.

    ``weights`` optionally skews the symbol distribution (used by the
    ablation that checks counting is load-independent of skew).
    """
    if length < 0:
        raise ValidationError(f"length must be >= 0, got {length}")
    rng = make_rng(seed)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (alphabet.size,):
            raise ValidationError(
                f"weights shape {weights.shape} != alphabet size {alphabet.size}"
            )
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValidationError("weights must be non-negative and sum > 0")
        probs = weights / weights.sum()
        return rng.choice(alphabet.size, size=length, p=probs).astype(np.uint8)
    return rng.integers(0, alphabet.size, size=length, dtype=np.int64).astype(np.uint8)


def paper_database(
    seed: "int | np.random.Generator | None" = 2009,
) -> np.ndarray:
    """The reproduction's stand-in for the paper's 393,019-letter stream."""
    return random_database(PAPER_DB_LENGTH, UPPERCASE, seed=seed)
