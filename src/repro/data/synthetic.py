"""Synthetic symbol databases.

The paper's experiments use a database of 393,019 letters over the
uppercase alphabet (§5).  The original stream is unavailable; a seeded
uniform stream of the same length and alphabet is the substitution
(DESIGN.md §2) — the characterization dimensions (algorithm, level,
card, thread count) do not depend on symbol statistics, only on the
database length and candidate count.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ValidationError
from repro.mining.alphabet import Alphabet, UPPERCASE
from repro.util.rng import make_rng

#: Length of the paper's evaluation database (§5).
PAPER_DB_LENGTH: int = 393_019


def random_database(
    length: int,
    alphabet: Alphabet = UPPERCASE,
    seed: "int | np.random.Generator | None" = None,
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    """A uint8-coded random symbol stream.

    ``weights`` optionally skews the symbol distribution (used by the
    ablation that checks counting is load-independent of skew).
    """
    if length < 0:
        raise ValidationError(f"length must be >= 0, got {length}")
    rng = make_rng(seed)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (alphabet.size,):
            raise ValidationError(
                f"weights shape {weights.shape} != alphabet size {alphabet.size}"
            )
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValidationError("weights must be non-negative and sum > 0")
        probs = weights / weights.sum()
        return rng.choice(alphabet.size, size=length, p=probs).astype(np.uint8)
    return rng.integers(0, alphabet.size, size=length, dtype=np.int64).astype(np.uint8)


def stream_chunks(
    n_chunks: int,
    chunk_size: int,
    alphabet: Alphabet = UPPERCASE,
    seed: "int | np.random.Generator | None" = None,
    drift: float = 0.0,
) -> "Iterator[np.ndarray]":
    """A seeded, chunk-at-a-time synthetic event stream.

    Yields ``n_chunks`` uint8 arrays of ``chunk_size`` events each — the
    shape the streaming subsystem (:mod:`repro.streaming`) consumes.
    With ``drift == 0`` every chunk is drawn uniformly (so the
    concatenation is statistically identical to
    :func:`random_database`).  A positive ``drift`` makes the
    per-symbol frequencies take a log-normal random walk between
    chunks — ``log w += Normal(0, drift)`` per symbol, renormalized —
    so later chunks over- and under-represent different symbols, the
    non-stationarity that exercises streaming promotion/demotion.

    Everything is derived from one :class:`numpy.random.Generator`, so
    a fixed integer ``seed`` reproduces the exact chunk sequence.
    Passing a ``Generator`` continues its state instead (chunks drawn
    in sequence, never reset).
    """
    if n_chunks < 0:
        raise ValidationError(f"n_chunks must be >= 0, got {n_chunks}")
    if chunk_size < 0:
        raise ValidationError(f"chunk_size must be >= 0, got {chunk_size}")
    if drift < 0:
        raise ValidationError(f"drift must be >= 0, got {drift}")
    rng = make_rng(seed)
    log_weights = np.zeros(alphabet.size, dtype=np.float64)
    for _ in range(n_chunks):
        if drift > 0.0:
            log_weights += rng.normal(0.0, drift, alphabet.size)
            weights = np.exp(log_weights - log_weights.max())
            yield random_database(chunk_size, alphabet, seed=rng,
                                  weights=weights)
        else:
            yield random_database(chunk_size, alphabet, seed=rng)


def paper_database(
    seed: "int | np.random.Generator | None" = 2009,
) -> np.ndarray:
    """The reproduction's stand-in for the paper's 393,019-letter stream."""
    return random_database(PAPER_DB_LENGTH, UPPERCASE, seed=seed)
