"""Contract-enforcing static analysis for the repro codebase.

The repo runs on a handful of written-down contracts — run-scoped
engines, propagate-don't-swallow mapper failures, atomic artifact
writes, seeded determinism, bit-identical checkpoint replay.  This
package turns each of them into a machine-checked AST rule so a
contract break fails ``repro lint`` (and CI) instead of surfacing as a
corrupted result three PRs later.  The prose versions of the contracts,
with the rule id that enforces each, live in ``CONTRACTS.md`` at the
repo root.

Layout
------
:mod:`repro.analysis.findings`
    :class:`Finding` value objects and severities.
:mod:`repro.analysis.core`
    Visitor core: :class:`FileContext`, the :class:`Rule` base class and
    registry, inline ``# repro: noqa REPxxx`` suppressions, the
    fingerprint baseline, and the :class:`Analyzer` driver.
:mod:`repro.analysis.rules`
    The built-in REP001–REP006 rules (importing this package registers
    them).
:mod:`repro.analysis.report`
    Text and JSON reporters.

Usage
-----
``repro lint [paths...]`` from the CLI, or ``python -m repro.analysis``
— both run the same gate: parse every ``.py`` under the given paths
(default: ``src`` plus ``benchmarks``/``examples`` when present), apply
every registered rule, and exit nonzero on any finding that is neither
inline-suppressed nor baselined.  Programmatic use::

    from repro.analysis import Analyzer, load_baseline
    report = Analyzer(baseline=load_baseline("lint-baseline.json")).run(["src"])
    assert report.ok, report.findings
"""

from repro.analysis.findings import SEVERITIES, Finding, Severity
from repro.analysis.core import (
    Analyzer,
    AnalysisReport,
    BASELINE_SCHEMA,
    DEFAULT_REGISTRY,
    FileContext,
    Rule,
    RuleRegistry,
    ScopedVisitor,
    baseline_payload,
    iter_source_files,
    load_baseline,
    register_rule,
)
from repro.analysis import rules as _builtin_rules  # registers REP001-006
from repro.analysis.report import REPORT_SCHEMA, render_json, render_text

__all__ = [
    "Finding",
    "Severity",
    "SEVERITIES",
    "Analyzer",
    "AnalysisReport",
    "FileContext",
    "Rule",
    "RuleRegistry",
    "ScopedVisitor",
    "DEFAULT_REGISTRY",
    "register_rule",
    "load_baseline",
    "baseline_payload",
    "iter_source_files",
    "BASELINE_SCHEMA",
    "REPORT_SCHEMA",
    "render_text",
    "render_json",
    "DEFAULT_BASELINE",
    "default_lint_paths",
]

#: conventional baseline filename at the repo root
DEFAULT_BASELINE = "lint-baseline.json"


def default_lint_paths() -> "list[str]":
    """The trees ``repro lint`` gates when no paths are given: ``src``
    always, plus ``benchmarks`` and ``examples`` when they exist."""
    from pathlib import Path

    paths = ["src"]
    for extra in ("benchmarks", "examples"):
        if Path(extra).is_dir():
            paths.append(extra)
    return paths
