"""Structured findings: what a rule reports and how it serializes.

A :class:`Finding` is one machine-checkable contract violation at one
source location.  Findings are value objects (frozen, ordered) so the
reporters can sort them deterministically and the baseline layer can
fingerprint them: a baseline entry matches on ``(rule_id, path,
snippet)`` rather than the line number, so unrelated edits above a
baselined finding do not resurrect it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Severity", "Finding", "SEVERITIES"]

#: recognized severities, in increasing order of how loudly CI fails
SEVERITIES = ("warning", "error")

# Severity is a plain string ("warning" | "error") validated at Finding
# construction; a str subtype keeps JSON serialization trivial.
Severity = str


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation at one source location.

    ``path`` is repo-relative (POSIX separators) so reports and
    baselines are portable across checkouts; ``snippet`` is the
    stripped source line the finding anchors to, used both for human
    context and as the location-independent part of the baseline
    fingerprint.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)
    severity: Severity = field(default="error", compare=False)
    fix_hint: str = field(default="", compare=False)
    snippet: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def fingerprint(self) -> "tuple[str, str, str]":
        """Line-number-independent identity used by the baseline."""
        return (self.rule_id, self.path, self.snippet)

    def to_payload(self) -> "dict[str, object]":
        """JSON-serializable form (the ``--format json`` row shape)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "snippet": self.snippet,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"
