"""Visitor core of the contract linter: rules, registry, analyzer.

The pieces compose bottom-up:

* :class:`FileContext` — one parsed source file plus everything a rule
  may want to know about it (repo-relative path, dotted module name,
  whether it is test code, the raw lines, the parsed tree).
* :class:`Rule` — one named contract check.  A rule walks the tree of a
  :class:`FileContext` (most use :class:`ScopedVisitor`, which
  maintains the lexical context — enclosing functions, active ``with``
  blocks, per-scope assignments — that contract rules need) and yields
  :class:`~repro.analysis.findings.Finding` records.
* :class:`RuleRegistry` — id -> rule mapping; :data:`DEFAULT_REGISTRY`
  holds the built-in REP rules (:mod:`repro.analysis.rules` registers
  them on import).
* :class:`Analyzer` — discovers files, parses them, runs every enabled
  rule, then filters the raw findings through inline suppressions
  (``# repro: noqa REPxxx``) and the baseline file.

Suppression
-----------
A finding is suppressed when any physical line its node spans carries
``# repro: noqa`` (suppresses every rule) or ``# repro: noqa REP003``
(listed rules only; a free-text reason may follow the ids and is
encouraged).  Suppressions are the escape hatch for *intentional*
contract departures and should always carry a reason.

Baseline
--------
A baseline file (JSON; see :func:`load_baseline`) names findings that
are tolerated without an inline comment — the adoption path for legacy
violations.  Entries match on ``(rule, path, snippet)`` so they survive
unrelated edits; the committed baseline starts (and should stay) empty.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.analysis.findings import Finding
from repro.errors import ConfigError, ValidationError

__all__ = [
    "FileContext",
    "Rule",
    "RuleRegistry",
    "ScopedVisitor",
    "Analyzer",
    "AnalysisReport",
    "DEFAULT_REGISTRY",
    "register_rule",
    "load_baseline",
    "baseline_payload",
    "BASELINE_SCHEMA",
    "dotted_name",
    "string_constants",
    "iter_source_files",
]

#: bumped on any incompatible baseline layout change
BASELINE_SCHEMA = 1

#: inline suppression comment: ``# repro: noqa`` or
#: ``# repro: noqa REP001, REP004 <free-text reason>``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b[:\s]*((?:REP\d{3}[,\s]*)*)", re.IGNORECASE
)

#: path fragments marking test code (rules may opt out of test files)
_TEST_MARKERS = ("tests/", "conftest",)


def dotted_name(node: "ast.expr") -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    The workhorse of every rule: resolves call targets like
    ``np.random.rand`` or ``time.perf_counter`` to comparable strings.
    Subscripts, calls, and anything else in the chain yield ``None``
    (the rule then simply cannot match, which is the safe direction).
    """
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def string_constants(node: ast.AST) -> "Iterator[str]":
    """Every string literal anywhere inside ``node``.

    Used to sniff artifact paths out of arbitrary path expressions —
    f-strings, ``Path(...) / "x.json"`` chains, concatenations — without
    needing to evaluate them.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


class FileContext:
    """One source file, parsed, with the metadata rules key off."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        #: repo-relative POSIX path ("src/repro/mining/engines.py")
        self.rel = rel
        self.source = source
        self.lines: "list[str]" = source.splitlines()
        self.tree: ast.AST = ast.parse(source, filename=rel)
        #: True for test modules (tests/, conftest.py); some rules
        #: (REP003) only apply to non-test code
        self.is_test = any(marker in rel for marker in _TEST_MARKERS)
        # line -> suppressed rule ids (empty frozenset = all rules)
        self._noqa: "dict[int, frozenset[str]]" = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match is not None:
                ids = frozenset(
                    part.upper()
                    for part in re.split(r"[,\s]+", match.group(1))
                    if part
                )
                self._noqa[lineno] = ids

    @property
    def module(self) -> str:
        """Dotted module path when the file lives under ``src/`` (e.g.
        ``repro.mining.engines``), else the stem."""
        rel = self.rel
        if rel.startswith("src/"):
            rel = rel[len("src/"):]
        return rel[: -len(".py")].replace("/", ".") if rel.endswith(".py") else rel

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, finding: Finding, node: "ast.AST | None" = None) -> bool:
        """True when an inline noqa covers ``finding``.

        Checked against every physical line the anchoring node spans —
        so a noqa at the end of a multi-line call's first line works no
        matter which line the rule anchored to — and against a noqa
        standing alone on a comment line immediately above the finding
        (the readable form for lines that are already long).
        """
        lines = {finding.line}
        if node is not None:
            start = getattr(node, "lineno", finding.line)
            end = getattr(node, "end_lineno", None) or start
            lines.update(range(start, end + 1))
        above = min(lines) - 1
        if 1 <= above <= len(self.lines) and self.lines[above - 1].lstrip().startswith("#"):
            lines.add(above)
        for lineno in lines:
            ids = self._noqa.get(lineno)
            if ids is not None and (not ids or finding.rule_id in ids):
                return True
        return False


class Rule:
    """One contract check.  Subclasses set the class attributes and
    implement :meth:`visit`."""

    #: stable rule id ("REP001"); doubles as the noqa/baseline key
    id: str = "REP000"
    #: one-line contract statement (shown in ``repro lint --list``)
    title: str = ""
    #: default severity of this rule's findings
    severity: str = "error"
    #: how to fix or legitimately suppress a finding
    fix_hint: str = ""
    #: skip test modules entirely (contracts about production code)
    skip_tests: bool = False

    def visit(self, ctx: FileContext) -> "Iterator[Finding]":
        raise NotImplementedError

    def run(self, ctx: FileContext) -> "Iterator[Finding]":
        if self.skip_tests and ctx.is_test:
            return
        yield from self.visit(ctx)

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: "str | None" = None,
    ) -> Finding:
        """A :class:`Finding` anchored to ``node``, snippet included."""
        lineno = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        return Finding(
            path=ctx.rel,
            line=lineno,
            col=col,
            rule_id=self.id,
            message=message,
            severity=severity if severity is not None else self.severity,
            fix_hint=self.fix_hint,
            snippet=ctx.snippet(lineno),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Rule {self.id} {type(self).__name__}>"


class ScopedVisitor(ast.NodeVisitor):
    """A NodeVisitor that maintains the lexical context rules need.

    While walking it tracks:

    * ``func_stack`` — enclosing function/lambda nodes (empty at module
      scope); ``in_function`` is the innermost one or ``None``;
    * ``with_names`` — for every active ``with`` item, the dotted name
      of its context expression (``with engine:`` -> ``"engine"``) and,
      when aliased, the alias name mapped back to that expression;
    * ``with_targets`` — alias names introduced by active ``with ... as
      name`` items, mapped to the dotted name of the context call's
      function (``with atomic_open(p) as fh:`` -> ``fh`` ->
      ``"atomic_open"``).

    Subclasses override the ``visit_*`` hooks as usual and must call
    ``self.generic_visit(node)`` (or the provided super implementations)
    to keep the stacks balanced.
    """

    def __init__(self) -> None:
        self.func_stack: "list[ast.AST]" = []
        self.with_names: "list[str]" = []
        self.with_targets: "dict[str, str]" = {}

    @property
    def in_function(self) -> "ast.AST | None":
        return self.func_stack[-1] if self.func_stack else None

    # -- functions -----------------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        self.func_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node)

    # -- with blocks ---------------------------------------------------

    def _visit_with(self, node: "ast.With | ast.AsyncWith") -> None:
        added_names: "list[str]" = []
        added_targets: "list[tuple[str, str | None]]" = []
        for item in node.items:
            name = dotted_name(item.context_expr)
            if name is not None:
                self.with_names.append(name)
                added_names.append(name)
            ctx_fn = ""
            if isinstance(item.context_expr, ast.Call):
                ctx_fn = dotted_name(item.context_expr.func) or ""
            if isinstance(item.optional_vars, ast.Name):
                alias = item.optional_vars.id
                added_targets.append((alias, self.with_targets.get(alias)))
                self.with_targets[alias] = ctx_fn or (name or "")
                if name is not None:
                    # `with engine as e:` — the alias is the engine too
                    self.with_names.append(alias)
                    added_names.append(alias)
        try:
            self.generic_visit(node)
        finally:
            for name in added_names:
                self.with_names.remove(name)
            for alias, previous in added_targets:
                if previous is None:
                    self.with_targets.pop(alias, None)
                else:
                    self.with_targets[alias] = previous

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)


class RuleRegistry:
    """Id -> :class:`Rule` mapping, iteration ordered by id."""

    def __init__(self) -> None:
        self._rules: "dict[str, Rule]" = {}

    def register(self, rule: Rule, replace: bool = False) -> Rule:
        if not re.fullmatch(r"REP\d{3}", rule.id):
            raise ConfigError(
                f"rule id must match REPnnn, got {rule.id!r}"
            )
        if rule.id in self._rules and not replace:
            raise ConfigError(f"rule {rule.id} already registered")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        rule = self._rules.get(rule_id)
        if rule is None:
            raise ValidationError(
                f"unknown rule {rule_id!r}; registered: "
                f"{', '.join(self.ids())}"
            )
        return rule

    def ids(self) -> "tuple[str, ...]":
        return tuple(sorted(self._rules))

    def rules(self, only: "Iterable[str] | None" = None) -> "tuple[Rule, ...]":
        if only is None:
            return tuple(self._rules[i] for i in self.ids())
        return tuple(self.get(i) for i in sorted(set(only)))

    def __iter__(self) -> "Iterator[Rule]":
        return iter(self.rules())

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules


#: the built-in registry; :mod:`repro.analysis.rules` populates it
DEFAULT_REGISTRY = RuleRegistry()


def register_rule(cls: "type[Rule]") -> "type[Rule]":
    """Class decorator registering an instance in the default registry."""
    DEFAULT_REGISTRY.register(cls())
    return cls


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(path: "Path | str") -> "set[tuple[str, str, str]]":
    """Fingerprints tolerated by the baseline file at ``path``.

    A missing file is an empty baseline.  A malformed file raises
    :class:`~repro.errors.ValidationError` — a linter whose suppression
    store is corrupt must not silently enforce nothing.
    """
    path = Path(path)
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ValidationError(
            f"lint baseline {path} is unreadable: {exc}"
        ) from exc
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != BASELINE_SCHEMA
        or not isinstance(payload.get("findings"), list)
    ):
        raise ValidationError(
            f"lint baseline {path} must be "
            f'{{"schema": {BASELINE_SCHEMA}, "findings": [...]}}'
        )
    fingerprints: "set[tuple[str, str, str]]" = set()
    for entry in payload["findings"]:
        if (
            not isinstance(entry, dict)
            or not all(isinstance(entry.get(k), str)
                       for k in ("rule", "path", "snippet"))
        ):
            raise ValidationError(
                f"lint baseline {path} entries need string "
                "rule/path/snippet fields"
            )
        fingerprints.add((entry["rule"], entry["path"], entry["snippet"]))
    return fingerprints


def baseline_payload(findings: "Sequence[Finding]") -> "dict[str, object]":
    """The JSON payload ``--write-baseline`` persists for ``findings``."""
    entries = sorted(
        {f.fingerprint() for f in findings}
    )
    return {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"rule": rule, "path": path, "snippet": snippet}
            for rule, path, snippet in entries
        ],
    }


# ---------------------------------------------------------------------------
# Analyzer
# ---------------------------------------------------------------------------

#: directory names never descended into during discovery
_SKIP_DIRS = {
    ".git", "__pycache__", ".mypy_cache", ".pytest_cache", "build",
    "dist", ".eggs", "node_modules", ".venv", "venv",
}


def iter_source_files(
    paths: "Sequence[Path | str]", root: "Path | None" = None
) -> "Iterator[tuple[Path, str]]":
    """Yield ``(path, repo_relative)`` for every ``.py`` under ``paths``.

    Files are yielded in sorted relative order so reports and baselines
    are deterministic across filesystems.
    """
    root = Path.cwd() if root is None else Path(root)
    seen: "set[Path]" = set()
    collected: "list[tuple[str, Path]]" = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            candidates: "Iterable[Path]" = (
                p for p in base.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        elif base.suffix == ".py":
            candidates = (base,)
        else:
            raise ValidationError(
                f"lint target {base} is neither a directory nor a .py file"
            )
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                rel = resolved.relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            collected.append((rel, path))
    for rel, path in sorted(collected):
        yield path, rel


class AnalysisReport:
    """Everything one analyzer run produced, pre-partitioned."""

    def __init__(
        self,
        findings: "list[Finding]",
        baselined: "list[Finding]",
        files_checked: int,
        parse_errors: "list[tuple[str, str]]",
    ) -> None:
        #: unbaselined, unsuppressed findings (what gates CI)
        self.findings = findings
        #: findings matched (and silenced) by the baseline file
        self.baselined = baselined
        self.files_checked = files_checked
        #: (path, message) for files that failed to parse
        self.parse_errors = parse_errors

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


class Analyzer:
    """Run a rule set over source trees (see module docstring)."""

    def __init__(
        self,
        registry: "RuleRegistry | None" = None,
        rules: "Iterable[str] | None" = None,
        baseline: "set[tuple[str, str, str]] | None" = None,
        root: "Path | None" = None,
    ) -> None:
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.rules = self.registry.rules(rules)
        self.baseline = baseline if baseline is not None else set()
        self.root = Path.cwd() if root is None else Path(root)

    def check_source(self, source: str, rel: str = "<string>") -> "list[Finding]":
        """Findings for one in-memory source blob (tests use this)."""
        ctx = FileContext(Path(rel), rel, source)
        return self._check_context(ctx)

    def _check_context(self, ctx: FileContext) -> "list[Finding]":
        findings: "list[Finding]" = []
        for rule in self.rules:
            for finding in rule.run(ctx):
                node = _anchor_stub(finding)
                if not ctx.suppressed(finding, node):
                    findings.append(finding)
        return sorted(findings)

    def run(self, paths: "Sequence[Path | str]") -> AnalysisReport:
        kept: "list[Finding]" = []
        baselined: "list[Finding]" = []
        parse_errors: "list[tuple[str, str]]" = []
        files = 0
        for path, rel in iter_source_files(paths, root=self.root):
            files += 1
            try:
                source = path.read_text(encoding="utf-8")
                ctx = FileContext(path, rel, source)
            except (OSError, SyntaxError, ValueError) as exc:
                parse_errors.append((rel, f"{type(exc).__name__}: {exc}"))
                continue
            for finding in self._check_context(ctx):
                if finding.fingerprint() in self.baseline:
                    baselined.append(finding)
                else:
                    kept.append(finding)
        return AnalysisReport(sorted(kept), sorted(baselined), files, parse_errors)


class _AnchorStub:
    """Minimal node stand-in carrying the span a finding covers.

    Rules anchor findings to real AST nodes while visiting, but by the
    time the analyzer filters suppressions only the finding remains.
    Rules therefore bake the span into the finding via ``line``; the
    stub restores the one-line span for the suppression check.  (Rules
    that anchor to multi-line nodes call ``ctx.suppressed`` themselves
    if they need the full span — the built-ins anchor to call sites,
    where the noqa convention is "on the first line of the call".)
    """

    def __init__(self, line: int) -> None:
        self.lineno = line
        self.end_lineno = line


def _anchor_stub(finding: Finding) -> _AnchorStub:
    return _AnchorStub(finding.line)
