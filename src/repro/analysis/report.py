"""Reporters: render an :class:`~repro.analysis.core.AnalysisReport`.

Two formats, one contract: the *text* reporter is for humans at a
terminal (one ``path:line:col`` line per finding, clickable in most
editors, fix hint indented below); the *JSON* reporter is for CI and
tooling (stable schema, sorted findings, summary block).  Both render
from the same :class:`~repro.analysis.findings.Finding` payloads, so a
finding never means different things in different formats.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import AnalysisReport
from repro.analysis.findings import Finding

__all__ = ["render_text", "render_json", "REPORT_SCHEMA"]

#: bumped on any incompatible ``--format json`` layout change
REPORT_SCHEMA = 1


def _summary_counts(findings: "Sequence[Finding]") -> "dict[str, int]":
    counts: "dict[str, int]" = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    """Human-oriented rendering; empty reports say so explicitly."""
    lines: "list[str]" = []
    for path, message in report.parse_errors:
        lines.append(f"{path}: parse error: {message}")
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.severity} "
            f"{finding.rule_id}: {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        if finding.fix_hint:
            lines.append(f"    hint: {finding.fix_hint}")
    if verbose and report.baselined:
        lines.append("")
        lines.append(f"baselined ({len(report.baselined)}):")
        for finding in report.baselined:
            lines.append(
                f"  {finding.location()}: {finding.rule_id}: {finding.message}"
            )
    lines.append("")
    per_rule = _summary_counts(report.findings)
    breakdown = (
        " (" + ", ".join(f"{r}: {n}" for r, n in per_rule.items()) + ")"
        if per_rule else ""
    )
    lines.append(
        f"{len(report.findings)} finding(s){breakdown}, "
        f"{len(report.baselined)} baselined, "
        f"{report.files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-oriented rendering (schema :data:`REPORT_SCHEMA`)."""
    payload = {
        "schema": REPORT_SCHEMA,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "findings": [f.to_payload() for f in report.findings],
        "baselined": [f.to_payload() for f in report.baselined],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in report.parse_errors
        ],
        "summary": {
            "total": len(report.findings),
            "by_rule": _summary_counts(report.findings),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
