"""The built-in REP rules: this repo's contracts, machine-checked.

Each rule guards one written-down contract (see ``CONTRACTS.md`` at the
repo root for the prose versions and their history):

========  ==========================================================
REP001    determinism: no unseeded randomness outside
          ``repro.util.rng``
REP002    durability: artifact files (.json/.npz/.npy) are written
          atomically via ``repro.resilience.atomic``
REP003    run scope: a REGISTRY engine counts only inside its
          ``with engine:`` block (non-test code)
REP004    failure semantics: mapper/shard dispatch exceptions always
          propagate — no silent broad ``except``
REP005    picklability: only module-level callables are submitted to
          process pools
REP006    replayability: no wallclock reads in mining/streaming
          counting paths (would break bit-identical resume)
========  ==========================================================

Rules favor precision over recall: they match the concrete idioms this
codebase uses (``get_engine``/``REGISTRY.get``, ``atomic_open``
with-targets, ``MapReduceJob(mapper=...)``) rather than attempting
whole-program analysis.  A violation the rule cannot see is still a
violation — the rules raise the floor, the tests remain the ceiling.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    Finding,
    Rule,
    ScopedVisitor,
    dotted_name,
    register_rule,
    string_constants,
)

__all__ = [
    "UnseededRngRule",
    "NonAtomicArtifactWriteRule",
    "RunScopeViolationRule",
    "SwallowedMapperExceptionRule",
    "UnpicklablePoolSubmissionRule",
    "WallclockInCountingPathRule",
]

#: file extensions that mark a path expression as an artifact path
ARTIFACT_EXTENSIONS = (".json", ".npz", ".npy")


def _collect(rule: Rule, ctx: FileContext, visitor: "_RuleVisitor") -> "Iterator[Finding]":
    visitor.visit(ctx.tree)
    yield from visitor.findings


class _RuleVisitor(ScopedVisitor):
    """ScopedVisitor that accumulates findings for one rule run."""

    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        super().__init__()
        self.rule = rule
        self.ctx = ctx
        self.findings: "list[Finding]" = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.ctx, node, message))


# ---------------------------------------------------------------------------
# REP001 — unseeded RNG
# ---------------------------------------------------------------------------

#: np.random members that *construct* seeded generators (fine to call
#: with an explicit seed; ``default_rng()`` with no seed still fires)
_NP_RANDOM_CTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


class _Rep001Visitor(_RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            # numpy: np.random.rand(...), numpy.random.shuffle(...), ...
            if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                member = parts[2]
                if member not in _NP_RANDOM_CTORS:
                    self.report(
                        node,
                        f"call to global-state RNG {name}(); results are "
                        "not reproducible across runs",
                    )
                elif member == "default_rng" and not node.args and not node.keywords:
                    self.report(
                        node,
                        "default_rng() without a seed draws OS entropy; "
                        "pass an explicit seed (or use repro.util.rng.make_rng)",
                    )
            # stdlib: random.random(), random.Random(), random.seed(), ...
            elif len(parts) >= 2 and parts[0] == "random":
                member = parts[1]
                if member == "Random":
                    if not node.args and not node.keywords:
                        self.report(
                            node,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                else:
                    self.report(
                        node,
                        f"call to stdlib global-state RNG {name}(); use a "
                        "seeded random.Random or repro.util.rng.make_rng",
                    )
        self.generic_visit(node)


@register_rule
class UnseededRngRule(Rule):
    """Determinism contract: every random draw flows from an explicit
    seed.  ``repro.util.rng`` is the designated seeding helper and is
    exempt."""

    id = "REP001"
    title = "unseeded RNG use outside repro.util.rng"
    severity = "error"
    fix_hint = (
        "seed explicitly: repro.util.rng.make_rng(seed) / "
        "np.random.default_rng(seed) / random.Random(seed)"
    )

    EXEMPT_MODULES = frozenset({"repro.util.rng"})

    def visit(self, ctx: FileContext) -> "Iterator[Finding]":
        if ctx.module in self.EXEMPT_MODULES:
            return
        yield from _collect(self, ctx, _Rep001Visitor(self, ctx))


# ---------------------------------------------------------------------------
# REP002 — non-atomic artifact write
# ---------------------------------------------------------------------------

#: with-context callables whose handles count as atomic sinks
_ATOMIC_CTX_SUFFIXES = ("atomic_open",)
#: numpy writers whose first positional argument is the sink
_NP_WRITERS = frozenset({"save", "savez", "savez_compressed", "savetxt"})


def _has_artifact_path(node: ast.AST) -> bool:
    return any(
        s.endswith(ARTIFACT_EXTENSIONS) for s in string_constants(node)
    )


class _Rep002Visitor(_RuleVisitor):
    def _is_atomic_handle(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            ctx_fn = self.with_targets.get(node.id, "")
            return ctx_fn.endswith(_ATOMIC_CTX_SUFFIXES)
        return False

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        parts = name.split(".") if name else []

        # open(path, "w") on an artifact path
        if parts == ["open"] and node.args:
            mode = ""
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                mode = str(node.args[1].value)
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = str(kw.value.value)
            if mode[:1] in ("w", "a", "x") and _has_artifact_path(node.args[0]):
                self.report(
                    node,
                    "artifact opened for writing with open(); a crash "
                    "mid-write leaves a torn file",
                )

        # np.save/np.savez/... to anything but an atomic_open handle
        elif (
            len(parts) >= 2
            and parts[0] in ("np", "numpy")
            and parts[-1] in _NP_WRITERS
            and node.args
            and not self._is_atomic_handle(node.args[0])
        ):
            self.report(
                node,
                f"{name}() writes its target in place; route through "
                "an atomic_open(...) handle",
            )

        # json.dump(obj, sink) to anything but an atomic_open handle
        elif (
            parts[-2:] == ["json", "dump"]
            and len(node.args) >= 2
            and not self._is_atomic_handle(node.args[1])
        ):
            self.report(
                node,
                "json.dump() to a non-atomic handle; a crash mid-write "
                "leaves a torn artifact",
            )

        # path.write_text(...) / path.write_bytes(...) on an artifact
        # path — matched on the attribute so receivers that defeat
        # dotted_name (``Path("x.json").write_text``) still count
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("write_text", "write_bytes")
            and _has_artifact_path(node.func.value)
        ):
            self.report(
                node,
                f"{node.func.attr}() replaces an artifact non-atomically",
            )

        self.generic_visit(node)


@register_rule
class NonAtomicArtifactWriteRule(Rule):
    """Durability contract: artifacts (.json/.npz/.npy) appear on disk
    whole or not at all — writes go through
    :mod:`repro.resilience.atomic`."""

    id = "REP002"
    title = "non-atomic write to an artifact path"
    severity = "error"
    fix_hint = (
        "write via repro.resilience.atomic (atomic_write_text / "
        "atomic_open) or repro.resilience.artifacts.write_json_artifact; "
        "read JSON artifacts via read_json_artifact"
    )

    def visit(self, ctx: FileContext) -> "Iterator[Finding]":
        yield from _collect(self, ctx, _Rep002Visitor(self, ctx))


# ---------------------------------------------------------------------------
# REP003 — run-scope violation
# ---------------------------------------------------------------------------

#: callables that yield a REGISTRY-managed engine
_ENGINE_SOURCES = ("get_engine", "REGISTRY.get")
#: method names that propagate engine-ness through reassignment
_ENGINE_PRESERVING = frozenset({"with_profile"})
#: engine methods that require an open run scope.  ``count`` and the
#: trie-batched ``count_batch`` (PR 8) are both run-scoped — the
#: ``startswith("count")`` fallback below catches future ``count_*``
#: variants, but these two are contract-named so the set is greppable
#: from CONTRACTS.md.
_RUN_SCOPED_METHODS = frozenset({"count", "count_batch"})


class _Rep003Visitor(_RuleVisitor):
    """Tracks names bound to REGISTRY engines per lexical scope and
    flags ``.count*`` calls on them outside their ``with`` block."""

    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        super().__init__(rule, ctx)
        # one engine-name set per scope; scopes[0] is module scope
        self.scopes: "list[set[str]]" = [set()]

    def _visit_function(self, node: ast.AST) -> None:
        self.scopes.append(set())
        try:
            super()._visit_function(node)
        finally:
            self.scopes.pop()

    def _is_engine_name(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def _is_engine_expr(self, node: ast.expr) -> bool:
        """Does this expression evaluate to a REGISTRY engine?"""
        if isinstance(node, ast.Call):
            fn = dotted_name(node.func)
            if fn is not None and (
                fn in _ENGINE_SOURCES
                or any(fn.endswith("." + src) for src in ("get_engine",))
                or fn.endswith(".REGISTRY.get")
            ):
                return True
            # engine.with_profile(...) is still the engine
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _ENGINE_PRESERVING
            ):
                return self._is_engine_expr(node.func.value)
        if isinstance(node, ast.Name):
            return self._is_engine_name(node.id)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id
            if self._is_engine_expr(node.value):
                self.scopes[-1].add(target)
            else:
                self.scopes[-1].discard(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and (
            func.attr in _RUN_SCOPED_METHODS or func.attr.startswith("count")
        ):
            receiver = func.value
            if isinstance(receiver, ast.Name) and self._is_engine_name(receiver.id):
                if receiver.id not in self.with_names:
                    self.report(
                        node,
                        f"{receiver.id}.{func.attr}() on a REGISTRY engine "
                        f"outside its 'with {receiver.id}:' run scope",
                    )
            elif self._is_engine_expr(receiver):
                # chained: get_engine("x").count(...) — never entered
                self.report(
                    node,
                    f"{func.attr}() chained directly onto an engine "
                    "lookup; the engine's run scope is never entered",
                )
        self.generic_visit(node)


@register_rule
class RunScopeViolationRule(Rule):
    """Run-scope contract (PR 3): one mining run is bracketed by
    ``with engine:``, which owns pool/session lifetime.  Counting
    outside the scope leaks or double-initializes those resources."""

    id = "REP003"
    title = "engine count outside its 'with engine:' run scope"
    severity = "error"
    fix_hint = (
        "bracket the run: `with engine:` (or `with engine as e:`) "
        "around the count* calls; tests are exempt"
    )
    skip_tests = True

    def visit(self, ctx: FileContext) -> "Iterator[Finding]":
        yield from _collect(self, ctx, _Rep003Visitor(self, ctx))


# ---------------------------------------------------------------------------
# REP004 — swallowed mapper exception
# ---------------------------------------------------------------------------

_BROAD_EXC = frozenset({"Exception", "BaseException"})


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    name = dotted_name(handler.type)
    return name is not None and name.split(".")[-1] in _BROAD_EXC


def _mentions_dispatch(nodes: "list[ast.stmt]") -> bool:
    """Does this statement list dispatch mapper/shard work?"""
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and "mapper" in sub.id.lower():
                return True
            if isinstance(sub, ast.Attribute):
                if "mapper" in sub.attr.lower() or sub.attr == "submit":
                    return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(sub, ast.Raise) for sub in ast.walk(handler))


class _Rep004Visitor(_RuleVisitor):
    def visit_Try(self, node: ast.Try) -> None:
        if _mentions_dispatch(node.body):
            for handler in node.handlers:
                if _is_broad_handler(handler) and not _reraises(handler):
                    exc = (
                        dotted_name(handler.type)
                        if handler.type is not None
                        else "bare except"
                    )
                    self.report(
                        handler,
                        f"broad '{exc}' around mapper/shard dispatch "
                        "never re-raises; mapper exceptions must propagate",
                    )
        self.generic_visit(node)


@register_rule
class SwallowedMapperExceptionRule(Rule):
    """Failure-semantics contract (PR 3/6): mapper exceptions always
    propagate to the driver.  A broad except that drops them converts
    a crash into silently wrong counts."""

    id = "REP004"
    title = "broad except swallows mapper/shard dispatch exceptions"
    severity = "error"
    fix_hint = (
        "re-raise (or re-raise a wrapped MiningError) inside the "
        "handler, or narrow the exception type"
    )

    def visit(self, ctx: FileContext) -> "Iterator[Finding]":
        yield from _collect(self, ctx, _Rep004Visitor(self, ctx))


# ---------------------------------------------------------------------------
# REP005 — unpicklable pool submission
# ---------------------------------------------------------------------------

_POOLISH = ("pool", "executor")


class _Rep005Visitor(_RuleVisitor):
    """Flags lambdas and local (nested) functions handed to process
    pools or :class:`repro.mapreduce.MapReduceJob` slots."""

    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        super().__init__(rule, ctx)
        # names of functions defined inside an enclosing function, per
        # function scope (these close over frame state → unpicklable)
        self.local_funcs: "list[set[str]]" = []

    def _visit_function(self, node: ast.AST) -> None:
        # node.body is an expression for lambdas, a statement list for defs
        body = node.body if isinstance(node.body, list) else []
        nested = {
            stmt.name
            for stmt in body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.local_funcs.append(nested)
        try:
            super()._visit_function(node)
        finally:
            self.local_funcs.pop()

    def _offender(self, node: ast.expr) -> "str | None":
        if isinstance(node, ast.Lambda):
            return "lambda"
        if isinstance(node, ast.Name) and any(
            node.id in scope for scope in self.local_funcs
        ):
            return f"local function {node.id!r}"
        return None

    def _check_args(
        self, node: ast.Call, where: str, positions: "tuple[int, ...]",
        keywords: "tuple[str, ...]" = (),
    ) -> None:
        for idx in positions:
            if idx < len(node.args):
                kind = self._offender(node.args[idx])
                if kind is not None:
                    self.report(
                        node.args[idx],
                        f"{kind} passed to {where}; it cannot be pickled "
                        "into a worker process",
                    )
        for kw in node.keywords:
            if kw.arg in keywords:
                kind = self._offender(kw.value)
                if kind is not None:
                    self.report(
                        kw.value,
                        f"{kind} passed as {where} {kw.arg}=; it cannot "
                        "be pickled into a worker process",
                    )

    def _is_thread_pool(self, receiver: str) -> bool:
        """Receiver is a with-target of a Thread* pool constructor —
        thread pools share the process, nothing is pickled."""
        base = receiver.split(".")[0] if receiver else ""
        ctx_fn = self.with_targets.get(base, "")
        return "thread" in ctx_fn.lower()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value) or ""
            poolish = any(p in receiver.lower() for p in _POOLISH)
            if self._is_thread_pool(receiver):
                self.generic_visit(node)
                return
            if func.attr == "submit":
                self._check_args(node, f"{receiver or '<pool>'}.submit", (0,))
            elif func.attr in ("map", "starmap", "imap", "imap_unordered",
                              "apply", "apply_async", "map_async") and poolish:
                self._check_args(node, f"{receiver}.{func.attr}", (0,))
        else:
            name = dotted_name(func) or ""
            if name.split(".")[-1] == "MapReduceJob":
                self._check_args(
                    node, "MapReduceJob", (1, 2), ("mapper", "reducer")
                )
        self.generic_visit(node)


@register_rule
class UnpicklablePoolSubmissionRule(Rule):
    """Picklability contract: work shipped to a process pool must be a
    module-level callable.  Lambdas and closures fail to pickle — at
    best a late PicklingError, at worst (fork start method) state that
    silently diverges from the parent."""

    id = "REP005"
    title = "lambda/local function submitted to a process pool"
    severity = "error"
    fix_hint = (
        "hoist the callable to module level and pass parameters through "
        "the payload (see engines._sharded_mapper for the idiom)"
    )

    def visit(self, ctx: FileContext) -> "Iterator[Finding]":
        yield from _collect(self, ctx, _Rep005Visitor(self, ctx))


# ---------------------------------------------------------------------------
# REP006 — wallclock in counting path
# ---------------------------------------------------------------------------

#: dotted suffixes that read the wallclock / monotonic clock
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
})


class _Rep006Visitor(_RuleVisitor):
    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        super().__init__(rule, ctx)
        #: bare local name -> the clock callable it was imported from
        #: (``from time import perf_counter as tick`` binds
        #: ``tick -> time.perf_counter``)
        self.clock_aliases: "dict[str, str]" = {}

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = dotted_name(node)
        if name is not None:
            tail2 = ".".join(name.split(".")[-2:])
            if tail2 in _CLOCK_CALLS:
                self.report(
                    node,
                    f"{name} read in a counting path; time through "
                    "repro.obs.clock instead (results must not depend "
                    "on wallclock, or resume stops replaying "
                    "bit-identically)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        # a bare-name import (`from time import perf_counter`) erases
        # the dotted form visit_Attribute matches on — track the bound
        # names and flag the import itself
        if node.module and node.level == 0:
            for alias in node.names:
                dotted = f"{node.module}.{alias.name}"
                if ".".join(dotted.split(".")[-2:]) in _CLOCK_CALLS:
                    self.clock_aliases[alias.asname or alias.name] = dotted
                    self.report(
                        node,
                        f"{dotted} imported into a counting path; time "
                        "through repro.obs.clock instead",
                    )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            dotted = self.clock_aliases.get(node.id)
            if dotted is not None:
                self.report(
                    node,
                    f"{node.id} ({dotted}) read in a counting path; "
                    "time through repro.obs.clock instead",
                )
        self.generic_visit(node)


@register_rule
class WallclockInCountingPathRule(Rule):
    """Replayability contract (PR 5/6, tightened in PR 10): counting in
    ``repro.mining`` / ``repro.streaming`` is a pure function of the
    input stream, so checkpoint/resume replays bit-identically.  Clock
    reads break that.

    :mod:`repro.obs.clock` is the sole sanctioned timing seam: code
    that legitimately measures elapsed time (calibration probes, the
    serial baseline's timing reports, telemetry spans) calls
    ``clock.now()`` / ``clock.utc_stamp()``, which this rule does not
    flag — so every wallclock acquisition in the counting packages
    funnels through one auditable module.  There are no module-level
    exemptions; the rare non-seam read (e.g. profile staleness checks
    comparing provenance stamps) carries an inline noqa with its
    justification.  Both dotted reads (``time.perf_counter()``) and
    bare-name imports (``from time import perf_counter``) are caught.
    """

    id = "REP006"
    title = "wallclock read inside mining/streaming counting code"
    severity = "error"
    fix_hint = (
        "derive ordering from stream positions/sequence numbers; if "
        "this is measurement code, time through the repro.obs.clock "
        "seam (clock.now() / clock.utc_stamp())"
    )

    #: counting-path packages this rule patrols
    SCOPED_PREFIXES = ("repro.mining", "repro.streaming")

    def visit(self, ctx: FileContext) -> "Iterator[Finding]":
        module = ctx.module
        if not any(
            module == p or module.startswith(p + ".")
            for p in self.SCOPED_PREFIXES
        ):
            return
        yield from _collect(self, ctx, _Rep006Visitor(self, ctx))
