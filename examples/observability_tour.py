#!/usr/bin/env python
"""Observability tour: trace a mining run and read its report.

Runs the level-wise miner with a live :class:`repro.obs.Recorder`
attached, then walks the structured :class:`~repro.obs.report.RunReport`
it produced: the span tree (one ``mine`` root, one ``level`` span per
level), the structural counters (candidates, survivors, count-cache
hits), and the phase table the ``repro report`` command renders.

The CLI equivalent::

    repro mine --events 100000 --threshold 0.004 --policy subsequence \\
        --engine auto --trace trace.json
    repro report trace.json

Run:  python examples/observability_tour.py
"""

import numpy as np

from repro.mining.alphabet import UPPERCASE
from repro.mining.miner import FrequentEpisodeMiner
from repro.mining.policies import MatchPolicy
from repro.obs.recorder import Recorder


def main() -> None:
    rng = np.random.default_rng(2009)
    db = rng.integers(0, UPPERCASE.size, 100_000).astype(np.uint8)
    print(f"database: {db.size:,} symbols over A-Z")

    recorder = Recorder()
    miner = FrequentEpisodeMiner(
        UPPERCASE,
        threshold=0.004,
        policy=MatchPolicy.SUBSEQUENCE,
        engine="auto",
        max_level=3,
        recorder=recorder,
    )
    result = miner.mine(db)
    print(f"frequent episodes: {len(result.all_frequent)}")

    report = miner.last_report
    assert report is not None and recorder.balanced

    print(f"\nrun report ({report.command}, wall {report.wall_s * 1e3:.1f} ms)")
    print("span tree:")
    for span in report.iter_spans():
        depth = 0 if span["name"] == "mine" else 1
        label = ", ".join(
            f"{k}={v}" for k, v in sorted(span["attrs"].items())
        )
        print(
            f"  {'  ' * depth}{span['name']:6s} "
            f"{span['duration_s'] * 1e3:8.2f} ms  {label}"
        )

    print("\nphases (nested spans count toward their parents):")
    for phase, calls, total_s, pct in report.phase_rows():
        print(f"  {phase:8s} x{calls}  {total_s * 1e3:8.2f} ms  {pct:5.1f}%")

    print("\ncounters:")
    for name, value in sorted(report.counters.items()):
        print(f"  {name:20s} {value:,}")

    # the report is a versioned artifact: write it atomically, read it
    # back through the schema-checked loader (what `repro report` does)
    path = report.write("observability_tour_trace.json")
    print(f"\nwrote {path} (inspect with `repro report {path}`)")


if __name__ == "__main__":
    main()
