#!/usr/bin/env python
"""Pipelined mining (paper §6: pipelining multiple phases).

Compares the classic serialized mining loop against the pipelined miner
on the paper's database: counting kernels for consecutive levels queue
back-to-back while host-side candidate generation overlaps device work,
and the report shows the idealized concurrent-kernel ceiling that
post-2009 hardware (Fermi onwards) would unlock.

Run:  python examples/pipelined_mining.py
"""

import time

from repro import PipelinedMiner, UPPERCASE, get_card
from repro.data import paper_database
from repro.mining.miner import FrequentEpisodeMiner


def main() -> None:
    db = paper_database()[:150_000]
    threshold = 0.00001  # keep all three levels interesting

    # classic loop (host generation serialized between kernels)
    t0 = time.perf_counter()
    classic = FrequentEpisodeMiner(
        UPPERCASE, threshold, exhaustive_candidates=True, max_level=3
    ).mine(db)
    host_s = time.perf_counter() - t0
    print(f"classic loop: {len(classic.all_frequent)} frequent episodes, "
          f"{host_s * 1e3:.0f} ms host-side")

    # pipelined loop on the simulated GTX 280
    miner = PipelinedMiner(
        get_card("GTX280"), UPPERCASE, threshold, max_level=3,
        host_ms_per_candidate=0.002,
    )
    report = miner.mine(db)
    print(f"\npipelined mining over {report.kernels_launched} kernels:")
    print(f"  device-serialized timeline: {report.serialized_ms:9.2f} ms")
    print(f"  host work hidden:           {report.host_ms_hidden:9.2f} ms")
    print(f"  concurrent-kernel ceiling:  {report.overlapped_ms:9.2f} ms "
          f"({report.overlap_speedup:.2f}x if kernels could overlap)")

    piped = report.result.all_frequent
    assert piped == classic.all_frequent, "pipelined result must match classic"
    print(f"\nresults identical to the classic loop "
          f"({len(piped)} frequent episodes)")
    for lvl in report.result.levels:
        print(f"  level {lvl.level}: {lvl.n_candidates:,} candidates -> "
              f"{lvl.n_frequent} frequent")


if __name__ == "__main__":
    main()
