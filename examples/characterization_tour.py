#!/usr/bin/env python
"""Tour of the paper's eight characterizations on the simulated testbed.

Runs the full Fig. 9 sweep (3 cards x 4 algorithms x 3 levels x thread
counts), evaluates the paper's eight performance characterizations
(§5.1-§5.3) against the model, and renders Fig. 7's panels as ASCII
series so the shapes are visible in a terminal.

Run:  python examples/characterization_tour.py
"""

from repro.experiments import (
    Harness,
    SweepConfig,
    fig7_spec,
    run_characterizations,
    run_figure,
)
from repro.experiments.expectations import check_all


def main() -> None:
    config = SweepConfig(threads=tuple(range(16, 513, 16)))
    print(f"running sweep: {config.n_points} configurations ...")
    harness = Harness(config)
    results = harness.run()

    print("\n--- the eight characterizations ---")
    for c in run_characterizations(results):
        status = "PASS" if c.passed else "FAIL"
        print(f"[{status}] C{c.cid}: {c.title}")
        print(f"        {c.evidence}")

    print("\n--- figure-level expectations ---")
    for e in check_all(results):
        status = "PASS" if e.passed else "FAIL"
        print(f"[{status}] {e.source}: {e.name}")
        print(f"        {e.detail}")

    print()
    rendered = run_figure(fig7_spec(), results)
    print(rendered.render_text(y_fmt="{:.2f}"))

    print("\n--- optimal configurations (paper §7) ---")
    for level in (1, 2, 3):
        best = results.best("GTX280", level)
        print(
            f"level {level}: Algorithm {best.algorithm} with {best.threads} "
            f"threads/block -> {best.ms:.2f} ms "
            f"(dominant: {best.dominant_phase}[{best.dominant_bound}])"
        )


if __name__ == "__main__":
    main()
