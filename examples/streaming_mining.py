#!/usr/bin/env python
"""Streaming episode mining over a drifting live event feed.

A temporal-motif service does not receive its database in one piece —
events arrive continuously.  This example feeds a seeded, drifting
synthetic stream chunk-by-chunk into a :class:`repro.streaming.
StreamingMiner` and shows the subsystem's two guarantees:

* **exactness** — after the last chunk, the streaming result is
  *identical* to batch-mining the concatenated stream (the chunk
  boundaries are an arrival accident, never a semantic one);
* **incrementality** — per-chunk work is proportional to the chunk,
  with candidates lazily promoted into (and demoted out of) tracking
  as the drift moves their support across the threshold.

Run:  python examples/streaming_mining.py
"""

import time

import numpy as np

from repro import StreamingMiner, SyntheticStreamSource
from repro.mining.alphabet import Alphabet
from repro.mining.miner import FrequentEpisodeMiner
from repro.mining.policies import MatchPolicy


def main() -> None:
    alphabet = Alphabet.of_size(10)
    threshold = 0.03
    source = SyntheticStreamSource(
        n_chunks=10, chunk_size=3_000, alphabet=alphabet, seed=42, drift=0.35
    )

    miner = StreamingMiner(
        alphabet,
        threshold=threshold,
        policy=MatchPolicy.SUBSEQUENCE,
        engine="auto",
        max_level=3,
    )
    print("consuming the feed chunk by chunk:")
    t0 = time.perf_counter()
    for update in map(miner.update, source.chunks()):
        line = (
            f"  chunk {update.chunk_index}: {update.total_events:>6,} events, "
            f"{update.n_frequent:>3} frequent, {update.n_tracked:>3} tracked"
        )
        if update.promoted:
            line += f", +{len(update.promoted)} promoted"
        if update.demoted:
            line += f", -{len(update.demoted)} demoted"
        print(line)
    stream_s = time.perf_counter() - t0
    streamed = miner.result()
    print(f"streaming: {len(streamed.all_frequent)} frequent episodes in "
          f"{stream_s * 1e3:.0f} ms "
          f"({miner.total_events / stream_s:,.0f} events/s)")

    # the whole point: batch mining the concatenation gives the same answer
    db = np.concatenate(list(source.chunks()))
    batch = FrequentEpisodeMiner(
        alphabet, threshold, policy=MatchPolicy.SUBSEQUENCE,
        engine="auto", max_level=3,
    ).mine(db)
    assert streamed.levels == batch.levels, "streaming must equal batch"
    print(f"batch over the {db.size:,}-event concatenation: identical "
          "result, level by level")
    for lvl in streamed.levels:
        print(f"  level {lvl.level}: {lvl.n_candidates:,} candidates -> "
              f"{lvl.n_frequent} frequent")

    top = sorted(streamed.all_frequent.items(), key=lambda kv: -kv[1])[:5]
    print("top episodes:")
    for ep, count in top:
        print(f"  {ep.to_symbols(alphabet)}: {count:,}")


if __name__ == "__main__":
    main()
