#!/usr/bin/env python
"""Market-basket scenario: ordered purchase rules (paper §3.1).

Demonstrates the full mining loop of the paper's Algorithm 1 — generate
candidates, count on the simulated GPU, eliminate below threshold,
extend survivors — on a purchase stream where order matters: the stream
contains {peanut-butter, bread} -> {jelly} far more often than the
reversed ordering, and temporal mining distinguishes the two.

Run:  python examples/market_basket.py
"""

from repro import FrequentEpisodeMiner, GpuCountingEngine, get_card
from repro.data import MarketConfig, generate_market_stream

# Product code legend for readability.
PRODUCTS = {0: "peanut-butter", 1: "bread", 2: "jelly", 3: "milk", 4: "cereal"}


def name_of(items: tuple[int, ...], alphabet) -> str:
    return " -> ".join(PRODUCTS.get(i, alphabet.symbol(i)) for i in items)


def main() -> None:
    config = MarketConfig(
        n_products=12,
        n_events=30_000,
        rules=(
            ((0, 1, 2), 0.05),  # peanut-butter -> bread -> jelly (frequent)
            ((3, 4), 0.08),  # milk -> cereal
            ((1, 0), 0.01),  # bread -> peanut-butter (rare reversal)
        ),
        seed=5,
    )
    alphabet = config.alphabet()
    stream = generate_market_stream(config)
    print(f"purchase stream: {stream.size:,} events over {config.n_products} products")

    # Level-wise mining with the GPU engine + adaptive algorithm selection.
    engine = GpuCountingEngine(
        device=get_card("GTX280"), alphabet_size=alphabet.size, algorithm="auto"
    )
    miner = FrequentEpisodeMiner(alphabet, threshold=0.02, engine=engine, max_level=4)
    result = miner.mine(stream)

    print(f"\nmined {len(result.levels)} levels at alpha={result.threshold}")
    for lvl in result.levels:
        print(
            f"  level {lvl.level}: {lvl.n_candidates} candidates -> "
            f"{lvl.n_frequent} frequent"
        )

    print("\nfrequent episodes (order-sensitive):")
    for ep, count in sorted(result.all_frequent.items(), key=lambda kv: -kv[1]):
        print(f"  {name_of(ep.items, alphabet)}: {count:,}")

    # Order sensitivity: the planted direction must dominate its reversal.
    freq = {ep.items: c for ep, c in result.all_frequent.items()}
    pb_bread = freq.get((0, 1), 0)
    bread_pb = freq.get((1, 0), 0)
    print(
        f"\npeanut-butter->bread: {pb_bread:,} vs bread->peanut-butter: {bread_pb:,}"
    )
    assert pb_bread > bread_pb, "ordered rule should dominate its reversal"

    print(
        f"\nsimulated GPU kernel time across {len(engine.reports)} counting "
        f"launches: {engine.total_kernel_ms:.2f} ms"
    )
    for report in engine.reports:
        print(f"  {report.kernel_name}: {report.total_ms:.3f} ms")


if __name__ == "__main__":
    main()
