#!/usr/bin/env python
"""Card advisor: which GPU and configuration for *your* problem?

The paper's §5.3 frames the user question directly: "Some users may
have a variety of hardware and wish to know which will return results
the fastest, or still others may wish to determine the optimal card for
their problem when considering a new purchase."  This example runs the
adaptive selector across all three cards for each problem size and
prints a purchasing/configuration guide — reproducing the paper's
punchline that the *oldest* card wins small problems while the GTX 280
wins large ones.

Run:  python examples/card_advisor.py
"""

from repro import AdaptiveSelector, MiningProblem, UPPERCASE, list_cards, get_card
from repro.data import paper_database
from repro.mining.candidates import generate_level
from repro.util.tables import format_table


def main() -> None:
    db = paper_database()
    rows = []
    winners = {}
    for level in (1, 2, 3):
        episodes = tuple(generate_level(UPPERCASE, level))
        problem = MiningProblem(db, episodes, UPPERCASE.size)
        best_card = None
        for card_name in list_cards():
            selector = AdaptiveSelector(get_card(card_name))
            choice = selector.select(problem)
            rows.append(
                (
                    f"L{level} ({len(episodes)} eps)",
                    card_name,
                    f"Algorithm {choice.algorithm_id}",
                    choice.threads_per_block,
                    choice.best_ms,
                )
            )
            if best_card is None or choice.best_ms < best_card[1]:
                best_card = (card_name, choice.best_ms)
        winners[level] = best_card

    print(
        format_table(
            ["problem", "card", "best algorithm", "threads/block", "modeled ms"],
            rows,
            title="Optimal configuration per (problem size, card)",
        )
    )
    print("\nrecommendations:")
    for level, (card, ms) in winners.items():
        print(f"  level {level}: buy/use {card} ({ms:.2f} ms at its best config)")
    print(
        "\npaper §7: 'the best execution time for large problem sizes always "
        "occurs on the newest generation ... What is surprising however, is "
        "that the oldest card we tested was consistently the fastest for "
        "small problem sizes.'"
    )


if __name__ == "__main__":
    main()
