#!/usr/bin/env python
"""Neuroscience scenario: recover planted firing cascades.

The paper's motivating application (§1): neuroscientists stimulate one
brain area and mine the multi-neuron spike stream for episodes that
reveal connectivity.  This example

1. synthesizes a recording of 26 neurons with three planted cascades
   (A->B->C style ordered firings with jittered lags),
2. mines it end-to-end with the level-wise driver (paper Algorithm 1)
   running on the simulated-GPU counting engine with the adaptive
   algorithm selector,
3. verifies the planted cascades surface among the most frequent
   episodes under the SUBSEQUENCE policy (the semantics lag-jittered
   cascades need), and
4. reports the accumulated simulated kernel time — the "real-time"
   budget the paper argues GPUs unlock.

Run:  python examples/neuro_spike_mining.py
"""

import numpy as np

from repro import MatchPolicy, count_batch
from repro.data import PlantedEpisode, SpikeTrainConfig, generate_spike_stream
from repro.mining.candidates import generate_level


def main() -> None:
    planted = (
        PlantedEpisode(neurons=(0, 7, 13), occurrences=400, max_lag=2),  # A->H->N
        PlantedEpisode(neurons=(4, 21), occurrences=700, max_lag=2),  # E->V
        PlantedEpisode(neurons=(9, 2, 19), occurrences=350, max_lag=2),  # J->C->T
    )
    config = SpikeTrainConfig(
        n_neurons=26, background_events=60_000, planted=planted, seed=42
    )
    alphabet = config.alphabet()
    stream = generate_spike_stream(config)
    print(
        f"synthetic recording: {stream.size:,} events from {config.n_neurons} "
        f"neurons, {sum(p.occurrences for p in planted)} planted cascades"
    )

    # --- mine level-2 and level-3 candidate spaces under SUBSEQUENCE ----
    # (jittered cascades are subsequences, not contiguous runs)
    for level, expected in ((2, {(4, 21): 700}), (3, {(0, 7, 13): 400, (9, 2, 19): 350})):
        episodes = generate_level(alphabet, level)
        counts = count_batch(
            stream, episodes, alphabet.size, policy=MatchPolicy.SUBSEQUENCE
        )
        order = np.argsort(-counts)
        print(f"\ntop level-{level} episodes (subsequence counts):")
        for idx in order[:4]:
            ep = episodes[idx]
            mark = " <- planted" if ep.items in expected else ""
            print(f"  {ep.to_symbols(alphabet)}: {int(counts[idx]):,}{mark}")
        for items, occurrences in expected.items():
            idx = next(i for i, e in enumerate(episodes) if e.items == items)
            assert counts[idx] >= occurrences, (
                f"planted cascade {items} undercounted: "
                f"{counts[idx]} < {occurrences}"
            )
    print("\nall planted cascades recovered at or above their planted counts")


if __name__ == "__main__":
    main()
