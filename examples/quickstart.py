#!/usr/bin/env python
"""Quickstart: count episodes on a simulated GTX 280.

Reproduces the paper's core measurement in a few lines: build the
393,019-letter database, generate the level-2 candidate space (650
episodes), run Algorithm 3 (block-level, texture) on a simulated
GeForce GTX 280, and print the counts plus the modeled kernel time with
its per-phase breakdown.

Run:  python examples/quickstart.py
"""

from repro import (
    GpuSimulator,
    MiningProblem,
    UPPERCASE,
    generate_level,
    get_algorithm,
    get_card,
    paper_database,
)


def main() -> None:
    db = paper_database()
    print(f"database: {db.size:,} symbols over A-Z")

    episodes = generate_level(UPPERCASE, 2)
    print(f"level 2 candidates: {len(episodes)} episodes (Table 1: 26*25 = 650)")

    problem = MiningProblem(db, tuple(episodes), UPPERCASE.size)
    sim = GpuSimulator(get_card("GTX280"))

    # The paper's level-2 sweet spot: Algorithm 3 with 64-thread blocks.
    kernel = get_algorithm(3)(problem, threads_per_block=64)
    result = sim.launch(kernel)

    top = sorted(
        zip(episodes, result.output), key=lambda pair: -pair[1]
    )[:5]
    print("\nmost frequent level-2 episodes:")
    for ep, count in top:
        print(f"  {ep.to_symbols(UPPERCASE)}: {int(count):,} occurrences")

    print("\nsimulated kernel timing:")
    print(result.report.summary())


if __name__ == "__main__":
    main()
